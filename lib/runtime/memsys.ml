open Ccdp_ir
open Ccdp_machine

type mode =
  | Seq
  | Base
  | Ccdp
  | Invalidate
  | Incoherent
  | Hscd
  | Msi
  | Mesi
  | Directory
  | Clustered

let mode_name = function
  | Seq -> "SEQ"
  | Base -> "BASE"
  | Ccdp -> "CCDP"
  | Invalidate -> "INV"
  | Incoherent -> "INC"
  | Hscd -> "HSCD"
  | Msi -> "MSI"
  | Mesi -> "MESI"
  | Directory -> "DIR"
  | Clustered -> "CLU"

let all_modes =
  [ Seq; Base; Ccdp; Invalidate; Incoherent; Hscd; Msi; Mesi; Directory; Clustered ]

let mode_describe = function
  | Seq -> "sequential reference execution (1 PE)"
  | Base -> "parallel, shared data never cached"
  | Ccdp -> "compiler-directed coherence with data prefetching"
  | Incoherent -> "parallel, caches left incoherent (unsound; ground truth)"
  | Invalidate -> "parallel, full cache invalidation at every barrier"
  | Hscd -> "hardware-supported compiler-directed version checks"
  | Msi -> "MSI bus snooping"
  | Mesi -> "MESI bus snooping"
  | Directory -> "full-map directory protocol"
  | Clustered -> "hardware-coherent islands, CCDP discipline across clusters"

let mode_of_string s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun m -> mode_name m = s) all_modes

(* Protocol fault injection for the differential campaign: each fault
   class breaks exactly the coherence action whose absence the staleness
   oracle must witness. The cost accounting is untouched — the sabotaged
   run looks identical on every counter, which is why value-blind testing
   cannot catch these. *)
type sabotage =
  | No_fault
  | Drop_invalidate
      (** snooping: the first remote copy a write transaction should
          invalidate is silently skipped *)
  | Corrupt_presence
      (** directory: the first sharer of a write's invalidation set is
          dropped from the presence bitset instead of invalidated *)
  | Drop_inter_cluster_invalidate
      (** clustered: the first copy a cross-cluster write's home-island
          back-invalidation should kill survives *)

(* HSCD write-version state of one array: [settled] is the last completed
   epoch tick that contained any write; [writers] is a bitmask of the PEs
   that have written during the current epoch (all-ones when a PE id
   exceeds the mask width). A reader whose own PE is the only current
   writer may trust same-epoch fills: nobody else changed memory. A record
   with [settled = -1; writers = 0] is indistinguishable from an absent
   one, which lets prepared accesses pin the record up front. *)
type version = { mutable settled : int; mutable writers : int }

(* Dynamic staleness oracle: memory carries a per-word version stamp
   (monotonic write counter) and the epoch in which the stamp was produced;
   cache lines capture the stamps of their words at fill/update time. A
   cache hit whose captured version predates a write completed before the
   current epoch has observed a stale copy — a concrete unsoundness witness
   for the stale-reference analysis, independent of whether the numeric
   value happens to coincide. *)
type violation = {
  v_ref : int;  (** offending reference id *)
  v_pe : int;
  v_array : string;
  v_index : int array;
  v_addr : int;
  v_cached_version : int;
  v_mem_version : int;
  v_write_epoch : int;  (** epoch that produced the missed write *)
  v_read_epoch : int;  (** epoch in which the stale hit happened *)
}

type oracle = {
  wver : int array;  (** per-word last-write version *)
  wepoch : int array;  (** epoch tick of the last write; -1 = init *)
  wpe : int array;
      (** PE that produced the last write; -1 = init. Consulted only by the
          clustered exemption rule (and only meaningful unbuffered, where
          versions settle at the write itself). *)
  mutable next_ver : int;
  mutable checked : int;
  mutable n_violations : int;
  mutable violations : violation list;  (** first few witnesses, newest first *)
}

let max_kept_violations = 16

(* Per-PE vector-get staging buffer. The consumption order (oldest staged
   line evicted first) is kept as a FIFO of [(line, generation)] pairs with
   lazy deletion: consuming or evicting a line leaves its queue entry
   behind as a tombstone, detected later by a generation mismatch against
   [vstamp]. Re-staging a line that is still staged only refreshes its
   ready cycle and keeps its queue position, exactly like the previous
   list-based order did — and every operation is O(1) amortized where the
   list paid O(staged lines) per consumed line. *)
type pe_ctx = {
  pe : Pe.t;
  vget : (int, int) Hashtbl.t;  (** line -> ready cycle *)
  vstamp : (int, int) Hashtbl.t;  (** line -> generation of its live entry *)
  vq : (int * int) Queue.t;  (** staging order, oldest first; has tombstones *)
  mutable vgen : int;
  mutable vget_words : int;
  fresh : (int, unit) Hashtbl.t;  (** lines filled since the last barrier *)
  mutable epoch_start : int;
  (* Buffered-mode private ledgers, reduced in PE-major order at the epoch
     barrier so sharded execution reproduces the serial reduction exactly. *)
  mutable wbuf : int array;  (** addresses written this epoch, program order *)
  mutable wn : int;
  mutable pchecked : int;  (** staged oracle assertions *)
  mutable pnviol : int;  (** staged violation count (exact) *)
  mutable pviol : violation list;  (** staged witnesses, newest first *)
  pobs : (int, unit) Hashtbl.t;  (** staged INCOHERENT observed-stale ids *)
  fbuf : float array;  (** scratch line for patched buffered fills *)
  vbuf : int array;  (** scratch version line for patched buffered fills *)
}

(* Which hardware-coherence machinery is armed. Snooping carries only its
   MESI flag; the directory carries its presence/owner table. Everything
   protocol-specific dispatches on this once-per-run value, so the
   established modes never touch the new state. *)
type hw =
  | Hw_none
  | Hw_snoop of bool  (** [true] = MESI *)
  | Hw_dir of Coherence.Dir.t
  | Hw_cluster
      (** hardware-coherent islands: MESI snooping scoped to the
          requester's cluster, CCDP stale discipline across clusters *)

(* A named intra-epoch lock. [free_at] is the cycle at which the last
   granted holder released it; grants are booked in the order PEs execute
   (PE-major under serial replay), which makes arbitration deterministic:
   a later-executed PE queues behind every earlier booking even when its
   simulated arrival cycle is smaller. *)
type lock_state = { mutable free_at : int }

type t = {
  cfg : Config.t;
  md : mode;
  hw : hw;
  sab : sabotage;
  mutable sab_fired : bool;
      (** set the first time the configured sabotage actually skipped an
          invalidation — distinguishes armed faults from fired ones *)
  amap : Addr_map.t;
  mem : float array;
  mach : Machine.t;
  ctxs : pe_ctx array;
  decls : (string, Array_decl.t) Hashtbl.t;
  handles : (string, Addr_map.handle) Hashtbl.t;
  pl : Ccdp_analysis.Annot.plan;
  net : Net.t;  (** interconnect: distances + link-occupancy bookings *)
  mutable epoch_tick : int;  (** epoch-execution counter (version clock) *)
  versions : (string, version) Hashtbl.t;
      (** HSCD: per-array write-version state *)
  observed_stale : (int, unit) Hashtbl.t;
      (** reference ids that returned a value differing from memory
          (photographed in INCOHERENT mode; ground truth for validating the
          stale-reference analysis) *)
  ora : oracle option;
  wv : int array;  (** the oracle's [wver], or [[||]] when the oracle is off *)
  buffered : bool;
      (** epoch-buffered cross-PE effects (Seq/Base/Ccdp/Invalidate/
          Incoherent): fills read the epoch-start [shadow] except for the
          filling PE's own writes, and oracle versions settle at the
          barrier — PEs of one epoch become order-independent *)
  shadow : float array;  (** memory as of the last barrier ([[||]] unbuffered) *)
  wstamp : int array;
      (** per-word [epoch * n_pes + pe] stamp of the current epoch's write,
          never reset (stale stamps cannot collide: the base grows
          monotonically); [[||]] when unbuffered *)
  locks : (string, lock_state) Hashtbl.t;
      (** named critical-section locks, created on first acquire and reset
          at every epoch boundary (the barrier subsumes any release) *)
  has_sync : bool;
      (** the program contains critical sections: locked bypass reads
          observe other PEs' current-epoch writes through [mem], so DOALL
          epochs must replay serially (see {!shardable}) *)
}

let create cfg ?(oracle = false) ?(sabotage = No_fault) (p : Program.t) ~plan
    md =
  let mach = Machine.create cfg in
  let amap =
    Addr_map.make p ~n_pes:cfg.Config.n_pes ~line_words:cfg.Config.line_words
      ~cache_lines:(Config.lines cfg)
      ()
  in
  let decls = Hashtbl.create 16 in
  List.iter (fun (a : Array_decl.t) -> Hashtbl.replace decls a.name a) p.Program.arrays;
  let ora =
    if oracle then
      let words = Addr_map.total_words amap in
      Some
        {
          wver = Array.make words 0;
          wepoch = Array.make words (-1);
          wpe = Array.make words (-1);
          next_ver = 0;
          checked = 0;
          n_violations = 0;
          violations = [];
        }
    else None
  in
  let hw =
    match md with
    | Msi -> Hw_snoop false
    | Mesi -> Hw_snoop true
    | Directory ->
        let n_lines =
          (Addr_map.total_words amap + cfg.Config.line_words - 1)
          / cfg.Config.line_words
        in
        Hw_dir (Coherence.Dir.create ~n_pes:cfg.Config.n_pes ~n_lines)
    | Clustered -> Hw_cluster
    | Seq | Base | Ccdp | Invalidate | Incoherent | Hscd -> Hw_none
  in
  let buffered =
    match md with
    | Seq | Base | Ccdp | Invalidate | Incoherent -> true
    | Hscd | Msi | Mesi | Directory | Clustered -> false
  in
  let words = Addr_map.total_words amap in
  let has_sync =
    let is_crit acc s =
      acc || match s with Stmt.Critical _ -> true | _ -> false
    in
    Stmt.fold is_crit false p.Program.main
    || List.exists
         (fun (pr : Program.proc) -> Stmt.fold is_crit false pr.Program.body)
         p.Program.procs
  in
  {
    cfg;
    md;
    hw;
    sab = sabotage;
    sab_fired = false;
    amap;
    mem = Array.make words 0.0;
    mach;
    ctxs =
      Array.init cfg.Config.n_pes (fun i ->
          {
            pe = Machine.pe mach i;
            vget = Hashtbl.create 64;
            vstamp = Hashtbl.create 64;
            vq = Queue.create ();
            vgen = 0;
            vget_words = 0;
            fresh = Hashtbl.create 256;
            epoch_start = 0;
            wbuf = (if buffered then Array.make 64 0 else [||]);
            wn = 0;
            pchecked = 0;
            pnviol = 0;
            pviol = [];
            pobs = Hashtbl.create 16;
            fbuf =
              (if buffered then Array.make cfg.Config.line_words 0.0 else [||]);
            vbuf =
              (if buffered && oracle then Array.make cfg.Config.line_words 0
               else [||]);
          });
    decls;
    handles = Hashtbl.create 16;
    pl = plan;
    net =
      (* a machine width the configured clustering cannot tile (the seq
         baseline's 1-PE rebuild of a clustered config, mainly) degrades
         to flat rather than failing: a machine of one PE has no islands *)
      (let cluster_pes =
         if cfg.Config.n_pes mod cfg.Config.cluster_pes = 0 then
           cfg.Config.cluster_pes
         else 1
       in
       Net.create ~hop:cfg.Config.hop ~cluster_pes cfg.Config.net
         ~n_pes:cfg.Config.n_pes);
    epoch_tick = 0;
    versions = Hashtbl.create 16;
    observed_stale = Hashtbl.create 16;
    ora;
    wv = (match ora with Some o -> o.wver | None -> [||]);
    buffered;
    shadow = (if buffered then Array.make words 0.0 else [||]);
    wstamp = (if buffered then Array.make words min_int else [||]);
    locks = Hashtbl.create 4;
    has_sync;
  }

let cfg t = t.cfg
let mode t = t.md
let map t = t.amap
let machine t = t.mach
let plan t = t.pl
let decl t name = Hashtbl.find t.decls name

let handle_of t name =
  match Hashtbl.find_opt t.handles name with
  | Some h -> h
  | None ->
      let h = Addr_map.handle t.amap name in
      Hashtbl.replace t.handles name h;
      h

let set t name idx v =
  List.iter
    (fun a ->
      t.mem.(a) <- v;
      if t.buffered then t.shadow.(a) <- v;
      match t.ora with
      | Some o ->
          (* untimed initialization: versioned, but settled before epoch 0 *)
          o.next_ver <- o.next_ver + 1;
          o.wver.(a) <- o.next_ver;
          o.wepoch.(a) <- -1;
          o.wpe.(a) <- -1
      | None -> ())
    (Addr_map.all_copies t.amap name idx)

let get t name idx = t.mem.(Addr_map.canonical t.amap name idx)
let charge t ~pe c =
  let ctx = t.ctxs.(pe) in
  ctx.pe.Pe.stats.Stats.flop_cycles <- ctx.pe.Pe.stats.Stats.flop_cycles + c;
  Pe.advance ctx.pe c
let clock t ~pe = t.ctxs.(pe).pe.Pe.clock

(* ------------------------------------------------------------------ *)
(* Intra-epoch locks                                                   *)
(* ------------------------------------------------------------------ *)

(* Acquire: an uncontended acquire costs [lock_acquire] cycles (a remote
   atomic swap round trip); a contended one additionally stalls until the
   holder's release. Grants are booked in PE execution order — serial
   PE-major replay makes the arbitration deterministic. *)
let lock_acquire t ~pe name =
  let ctx = t.ctxs.(pe) in
  let st =
    match Hashtbl.find_opt t.locks name with
    | Some st -> st
    | None ->
        let st = { free_at = 0 } in
        Hashtbl.replace t.locks name st;
        st
  in
  let arrival = ctx.pe.Pe.clock in
  let grant = max (arrival + t.cfg.Config.lock_acquire) st.free_at in
  let stall = grant - arrival - t.cfg.Config.lock_acquire in
  let s = ctx.pe.Pe.stats in
  s.Stats.lock_acquires <- s.Stats.lock_acquires + 1;
  if stall > 0 then begin
    s.Stats.lock_stall_cycles <- s.Stats.lock_stall_cycles + stall;
    s.Stats.stall_cycles <- s.Stats.stall_cycles + stall
  end;
  Pe.advance ctx.pe (grant - arrival)

(* Release: the publication fence — [lock_release] cycles, after which the
   section's writes are visible to the next holder (locked readers bypass
   the cache, so memory itself is already current). *)
let lock_release t ~pe name =
  let ctx = t.ctxs.(pe) in
  Pe.advance ctx.pe t.cfg.Config.lock_release;
  match Hashtbl.find_opt t.locks name with
  | Some st -> if ctx.pe.Pe.clock > st.free_at then st.free_at <- ctx.pe.Pe.clock
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Internals                                                           *)
(* ------------------------------------------------------------------ *)

(* Targets are plain ints on the per-access path: [-1] is local, anything
   else the owning (remote) PE id — no variant boxing per access. *)

(* Per-access hop cost: [Net.cost] reads the all-pairs matrix folded once
   at [Net.create] time, so the prepared-access fast path stays a single
   array lookup — no dispatch, no allocation. *)
let net_dist t ~pe owner = Net.cost t.net ~src:pe ~dst:owner

(* Intra-cluster transfers ride the island's local fabric at the cheap
   local rate; only genuinely inter-cluster references pay the base remote
   latency plus per-hop distance. On a flat machine ([cluster_pes = 1]) a
   remote target is never same-cluster, so nothing changes. *)
let latency_of t ~pe tgt =
  if tgt < 0 || Net.same_cluster t.net pe tgt then t.cfg.Config.local
  else t.cfg.Config.remote + net_dist t ~pe tgt

(* Latency of a read that does not allocate in the cache: local reads
   stream through the T3D read-ahead buffer. *)
let uncached_latency_of t ~pe tgt =
  if tgt < 0 || Net.same_cluster t.net pe tgt then t.cfg.Config.uncached_local
  else t.cfg.Config.remote + net_dist t ~pe tgt

(* Link-occupancy accounting: a remote transfer of [lines] cache lines
   books its bottleneck link for [link_occ] cycles per line starting at
   [now]; the returned queueing delay is added to the transfer's latency.
   Free (and counter-silent) when the contention model is off or the
   access is local. *)
let contend t ctx tgt ~now ~lines =
  if
    t.cfg.Config.link_occ = 0 || tgt < 0
    || Net.same_cluster t.net ctx.pe.Pe.id tgt
  then 0
  else begin
    let delay, depth =
      Net.acquire t.net ~dst:tgt ~now
        ~hold:(t.cfg.Config.link_occ * lines)
    in
    let s = ctx.pe.Pe.stats in
    if delay > 0 then
      s.Stats.link_conflicts <- s.Stats.link_conflicts + 1;
    if depth > s.Stats.link_occ_max then s.Stats.link_occ_max <- depth;
    delay
  end

let store_cost t ~pe tgt =
  if tgt < 0 || Net.same_cluster t.net pe tgt then t.cfg.Config.store_local
  else t.cfg.Config.store_remote

(* Snoop-bus arbitration: every MSI/MESI coherence transaction (miss
   fetch, upgrade, write-allocate) serializes through one machine-wide
   bus, modelled as a throughput backlog against the epoch barrier (see
   Net.acquire_bus). The queueing delay is what stops snooping from
   scaling with PE count. *)
let bus_acquire t ctx ~lines =
  if t.cfg.Config.bus_occ = 0 then 0
  else begin
    let delay, _depth =
      Net.acquire_bus t.net ~now:ctx.pe.Pe.clock ~since:ctx.epoch_start
        ~hold:(t.cfg.Config.bus_occ * lines)
    in
    if delay > 0 then begin
      let s = ctx.pe.Pe.stats in
      s.Stats.bus_conflicts <- s.Stats.bus_conflicts + 1
    end;
    delay
  end

(* Island-bus arbitration: the clustered mode's intra-cluster coherence
   transactions serialize on their island's local bus — the same
   throughput-backlog model, but one counter per cluster, so one island's
   storm never delays another's. *)
let cluster_bus_acquire t ctx ~lines =
  if t.cfg.Config.bus_occ = 0 then 0
  else begin
    let delay, _depth =
      Net.acquire_cluster_bus t.net
        ~cluster:(Net.cluster_of t.net ctx.pe.Pe.id)
        ~now:ctx.pe.Pe.clock ~since:ctx.epoch_start
        ~hold:(t.cfg.Config.bus_occ * lines)
    in
    if delay > 0 then begin
      let s = ctx.pe.Pe.stats in
      s.Stats.bus_conflicts <- s.Stats.bus_conflicts + 1
    end;
    delay
  end

(* Annex set-up cost of addressing a target PE (free when resident). *)
let annex_cost t ctx tgt =
  if tgt < 0 then 0
  else if Dtb_annex.touch ctx.pe.Pe.annex tgt then begin
    ctx.pe.Pe.stats.Stats.annex_hits <- ctx.pe.Pe.stats.Stats.annex_hits + 1;
    0
  end
  else begin
    ctx.pe.Pe.stats.Stats.annex_misses <- ctx.pe.Pe.stats.Stats.annex_misses + 1;
    t.cfg.Config.annex_setup
  end

(* Directory bookkeeping of a displaced line: the home forgets this PE's
   copy (a replacement-hint message), and displacing the line one owns
   Modified additionally pays the write-back injection. *)
let dir_note_eviction t ctx d =
  let ev = Cache.last_evicted_line ctx.pe.Pe.cache in
  if ev >= 0 then begin
    let self = ctx.pe.Pe.id in
    Coherence.Dir.remove d ~line:ev ~pe:self;
    let s = ctx.pe.Pe.stats in
    s.Stats.dir_msgs <- s.Stats.dir_msgs + 1;
    if Coherence.Dir.owner d ~line:ev = self then begin
      Coherence.Dir.set_owner d ~line:ev (-1);
      Pe.advance ctx.pe t.cfg.Config.store_remote
    end
  end

(* Current-epoch write stamp of [pe]: unique per (epoch, PE), monotonic
   across epochs, so [wstamp] never needs clearing. *)
let stamp_of t pe = (t.epoch_tick * Array.length t.ctxs) + pe

(* Buffered fill: a line transfer observes memory as of the last barrier
   ([shadow]) except for words this PE itself wrote in the current epoch,
   which it reads back from [mem]. Foreign same-epoch writes land in a
   line only through false sharing (the epoch model is race-free at word
   granularity) and under serial PE-major replay their visibility would
   depend on PE order — shadow makes it epoch-deterministic, and it is
   the only value a concurrently executing shard may soundly read.
   Racing on a foreign [wstamp] word is benign: whatever value is
   observed, it is never this PE's own stamp. *)
let buffered_fill ~state t ctx line =
  let lw = t.cfg.Config.line_words in
  let pos = line * lw in
  let base = stamp_of t ctx.pe.Pe.id in
  let own = ref false in
  for k = pos to pos + lw - 1 do
    if t.wstamp.(k) = base then own := true
  done;
  if not !own then
    Cache.fill_from ctx.pe.Pe.cache ~tick:t.epoch_tick ~state ~vers:t.wv ~line
      ~src:t.shadow ~pos ()
  else begin
    (* patch the PE's own writes over the shadow in a scratch line; the
       captured versions come from the same position, so they are staged
       in a scratch too *)
    Array.blit t.shadow pos ctx.fbuf 0 lw;
    for k = 0 to lw - 1 do
      if t.wstamp.(pos + k) = base then ctx.fbuf.(k) <- t.mem.(pos + k)
    done;
    let vers =
      if Array.length t.wv = 0 then [||]
      else begin
        Array.blit t.wv pos ctx.vbuf 0 lw;
        ctx.vbuf
      end
    in
    Cache.fill_from ctx.pe.Pe.cache ~tick:t.epoch_tick ~state ~vers ~line
      ~src:ctx.fbuf ~pos:0 ()
  end

(* The value an access observes for [addr] right after its line filled:
   under buffering, own same-epoch writes from memory, everything else
   from the shadow the fill actually delivered. *)
let filled_value t ctx addr =
  if not t.buffered then t.mem.(addr)
  else if t.wstamp.(addr) = stamp_of t ctx.pe.Pe.id then t.mem.(addr)
  else t.shadow.(addr)

let fill ?(state = 1 (* Coherence.shared *)) t ctx line =
  if t.buffered then buffered_fill ~state t ctx line
  else
    Cache.fill_from ctx.pe.Pe.cache ~tick:t.epoch_tick ~state ~vers:t.wv ~line
      ~src:t.mem
      ~pos:(line * t.cfg.Config.line_words) ();
  (match t.hw with
  | Hw_none -> ()
  | Hw_snoop _ | Hw_cluster ->
      (* displacing a Modified line pays the write-back injection (memory
         itself is already current — write-through keeps the functional
         state exact; this is the protocol's timing debt) *)
      if Cache.last_evicted_state ctx.pe.Pe.cache = Coherence.modified then
        Pe.advance ctx.pe t.cfg.Config.store_remote
  | Hw_dir d ->
      dir_note_eviction t ctx d;
      Coherence.Dir.add d ~line ~pe:ctx.pe.Pe.id);
  Hashtbl.replace ctx.fresh line ()

let record_arrival ctx ~stall =
  let s = ctx.pe.Pe.stats in
  if stall > 0 then begin
    s.Stats.pf_late <- s.Stats.pf_late + 1;
    s.Stats.pf_late_cycles <- s.Stats.pf_late_cycles + stall;
    s.Stats.stall_cycles <- s.Stats.stall_cycles + stall
  end
  else s.Stats.pf_on_time <- s.Stats.pf_on_time + 1

(* Oracle assertion at a cache hit: the captured word version must be no
   older than the last write settled before the current epoch. Writes of
   the current epoch are exempt — under the epoch model's race-freedom a
   same-epoch writer of a read location can only be the reading PE itself,
   whose write-through patched the cached copy (and its version). Two
   refinements close the same-epoch blind spot for synchronized programs:
   under an eagerly-invalidating hardware protocol every hit must carry
   the globally latest version (the protocol invalidates on write, so
   same-epoch lock writes are not exempt), and under buffering a foreign
   current-epoch write stamp on a hit word is a certain miss of a
   published intra-epoch value (see [foreign_fresh] below). *)
let oracle_check t ctx (r : Reference.t) idx addr =
  match t.ora with
  | None -> ()
  | Some o ->
      let cv =
        match Cache.word_version ctx.pe.Pe.cache ~addr with
        | Some v -> v
        | None -> 0
      in
      (* Mini-epoch refinement: under buffering a cached copy can never
         contain another PE's current-epoch write (fills observe the
         epoch-start shadow, write-through patches only the writer, and
         drains happen at the barrier). So a tracked cache hit on a word
         carrying a foreign current-epoch stamp has — with certainty —
         missed a write published inside this epoch: exactly the escape a
         misclassified (cached instead of bypassed) in-critical read
         produces. Race-free lock-free programs never trip this test: only
         the reading PE itself writes its read set within an epoch. *)
      let foreign_fresh =
        t.buffered
        &&
        let st = t.wstamp.(addr) in
        let base = t.epoch_tick * Array.length t.ctxs in
        st >= base && st <> base + ctx.pe.Pe.id
      in
      let stale =
        match t.hw with
        | Hw_cluster ->
            (* clustered exemption: only a same-cluster write of the
               current epoch may be observed without a violation — the
               island's snoop keeps such copies coherent, while any
               cross-epoch or cross-cluster stale observation is exactly
               the escape the inter-cluster CCDP discipline must prevent *)
            o.wver.(addr) > cv
            && not
                 (o.wepoch.(addr) = t.epoch_tick
                 && o.wpe.(addr) >= 0
                 && Net.same_cluster t.net o.wpe.(addr) ctx.pe.Pe.id)
        | Hw_none | Hw_snoop _ | Hw_dir _ ->
            let eager =
              match t.hw with
              | Hw_none | Hw_cluster -> false
              | Hw_snoop _ | Hw_dir _ -> true
            in
            (o.wver.(addr) > cv && (eager || o.wepoch.(addr) < t.epoch_tick))
            || foreign_fresh
      in
      if t.buffered then begin
        (* stage in the PE's private ledger; merged PE-major at the
           barrier — serial replay executes PEs in exactly that order, so
           the merged log reproduces the serial one *)
        ctx.pchecked <- ctx.pchecked + 1;
        if stale then begin
          ctx.pnviol <- ctx.pnviol + 1;
          if ctx.pnviol <= max_kept_violations then
            ctx.pviol <-
              {
                v_ref = r.Reference.id;
                v_pe = ctx.pe.Pe.id;
                v_array = r.Reference.array_name;
                v_index = Array.copy idx;
                v_addr = addr;
                v_cached_version = cv;
                v_mem_version = o.wver.(addr);
                v_write_epoch =
                  (if foreign_fresh then t.epoch_tick else o.wepoch.(addr));
                v_read_epoch = t.epoch_tick;
              }
              :: ctx.pviol
        end
      end
      else begin
        o.checked <- o.checked + 1;
        if stale then begin
          o.n_violations <- o.n_violations + 1;
          (* bounded witness list: prepend (newest first), reversed at
             report time — the n-th violation costs O(1), not O(kept) *)
          if o.n_violations <= max_kept_violations then
            o.violations <-
              {
                v_ref = r.Reference.id;
                v_pe = ctx.pe.Pe.id;
                v_array = r.Reference.array_name;
                v_index = Array.copy idx;
                v_addr = addr;
                v_cached_version = cv;
                v_mem_version = o.wver.(addr);
                v_write_epoch = o.wepoch.(addr);
                v_read_epoch = t.epoch_tick;
              }
              :: o.violations
        end
      end

(* Consume a staged vector-get line: drop the table entries; the FIFO entry
   stays behind as a tombstone (generation mismatch). *)
let vget_consume ctx line lw =
  Hashtbl.remove ctx.vget line;
  Hashtbl.remove ctx.vstamp line;
  ctx.vget_words <- ctx.vget_words - lw

(* The ordinary cached-read protocol: consume a pending vector-get or queue
   entry if one exists, then the cache, then demand-fetch. [fresh_only]
   restricts cache hits to lines filled since the last barrier (used for
   leading references, whose cached copy is only trustworthy when this
   epoch's prefetch machinery put it there). [track] marks tracked shared
   reads, whose cache hits the oracle asserts over ([r], [idx] identify the
   dynamic reference in the report). *)
let cached_read ?(fresh_only = false) ?(track = false) t ctx (r : Reference.t)
    idx addr tgt =
  let self = ctx.pe.Pe.id in
  let lw = t.cfg.Config.line_words in
  let line = addr / lw in
  match Hashtbl.find_opt ctx.vget line with
  | Some ready ->
      let stall = max 0 (ready - ctx.pe.Pe.clock) in
      vget_consume ctx line lw;
      record_arrival ctx ~stall;
      Pe.advance ctx.pe (stall + t.cfg.Config.hit);
      fill t ctx line;
      filled_value t ctx addr
  | None -> (
      match Prefetch_queue.find ctx.pe.Pe.queue ~line with
      | Some ready ->
          let stall = max 0 (ready - ctx.pe.Pe.clock) in
          Prefetch_queue.remove ctx.pe.Pe.queue ~line;
          record_arrival ctx ~stall;
          Pe.advance ctx.pe (stall + t.cfg.Config.pf_extract);
          fill t ctx line;
          filled_value t ctx addr
      | None ->
          let off =
            if fresh_only && not (Hashtbl.mem ctx.fresh line) then -1
            else Cache.locate ctx.pe.Pe.cache ~addr
          in
          if off >= 0 then begin
            if track then oracle_check t ctx r idx addr;
            ctx.pe.Pe.stats.Stats.hits <- ctx.pe.Pe.stats.Stats.hits + 1;
            Pe.advance ctx.pe t.cfg.Config.hit;
            Cache.data_at ctx.pe.Pe.cache off
          end
          else begin
            (let s = ctx.pe.Pe.stats in
             if tgt < 0 then s.Stats.miss_local <- s.Stats.miss_local + 1
             else s.Stats.miss_remote <- s.Stats.miss_remote + 1);
            let ac = annex_cost t ctx tgt in
            let delay = contend t ctx tgt ~now:ctx.pe.Pe.clock ~lines:1 in
            Pe.advance ctx.pe (ac + latency_of t ~pe:self tgt + delay);
            fill t ctx line;
            filled_value t ctx addr
          end)

let uncached_read t ctx addr tgt =
  (let s = ctx.pe.Pe.stats in
   if tgt < 0 then s.Stats.uncached_local <- s.Stats.uncached_local + 1
   else s.Stats.uncached_remote <- s.Stats.uncached_remote + 1);
  let ac = annex_cost t ctx tgt in
  let delay = contend t ctx tgt ~now:ctx.pe.Pe.clock ~lines:1 in
  Pe.advance ctx.pe (ac + uncached_latency_of t ~pe:ctx.pe.Pe.id tgt + delay);
  t.mem.(addr)

let bypass_read t ctx addr tgt =
  ctx.pe.Pe.stats.Stats.bypass_reads <- ctx.pe.Pe.stats.Stats.bypass_reads + 1;
  let ac = annex_cost t ctx tgt in
  let delay = contend t ctx tgt ~now:ctx.pe.Pe.clock ~lines:1 in
  Pe.advance ctx.pe (ac + uncached_latency_of t ~pe:ctx.pe.Pe.id tgt + delay);
  t.mem.(addr)

(* A moved-back prefetch: the issue happened [back] cycles ago (clamped to
   the epoch start), so the reader only stalls for the residual latency. *)
let moved_back_read t ctx addr tgt ~back =
  let s = ctx.pe.Pe.stats in
  s.Stats.pf_issued <- s.Stats.pf_issued + 1;
  let lw = t.cfg.Config.line_words in
  let line = addr / lw in
  let issue_at = max ctx.epoch_start (ctx.pe.Pe.clock - back) in
  let delay = contend t ctx tgt ~now:issue_at ~lines:1 in
  let ready = issue_at + latency_of t ~pe:ctx.pe.Pe.id tgt + delay in
  let stall = max 0 (ready - ctx.pe.Pe.clock) in
  record_arrival ctx ~stall;
  Pe.advance ctx.pe
    (annex_cost t ctx tgt + t.cfg.Config.pf_issue + t.cfg.Config.pf_extract
   + stall);
  Cache.invalidate_line ctx.pe.Pe.cache ~line;
  fill t ctx line;
  filled_value t ctx addr

(* ------------------------------------------------------------------ *)
(* Public protocol                                                     *)
(* ------------------------------------------------------------------ *)

(* a Lead whose stale verdict is Clean is a pure latency-hiding prefetch
   (the paper's future-work extension): any cached copy of its data is
   valid, so staging may skip cached lines and reads may hit non-fresh
   lines *)
let clean_lead t id =
  Ccdp_analysis.Stale.verdict t.pl.Ccdp_analysis.Annot.stale id
  = Ccdp_analysis.Stale.Clean

let tracked_shared t name =
  let d = decl t name in
  d.Array_decl.shared && d.Array_decl.dist <> Dist.Replicated

let writer_bit pe = if pe < 62 then 1 lsl pe else -1

let version_record t name =
  match Hashtbl.find_opt t.versions name with
  | Some v -> v
  | None ->
      let v = { settled = -1; writers = 0 } in
      Hashtbl.replace t.versions name v;
      v

(* HSCD (hardware-supported compiler-directed, after Choi-Yew's version
   schemes): every cache line carries its fill version, every array a
   write-version register. A hit whose line does not post-date the last
   write by another PE self-invalidates and refetches — coherence in
   hardware checks, no prefetching, no whole-cache flushes. Strictness
   matters: a line filled in the same epoch as another PE's write to it may
   have captured pre-write words (false sharing at epoch granularity); own
   writes are exempt, since memory was not changed by anyone else. *)
let hscd_read ver t ctx (r : Reference.t) idx addr tgt =
  let lw = t.cfg.Config.line_words in
  let line = addr / lw in
  let effective =
    match ver with
    | None -> -1
    | Some v ->
        if v.writers = 0 || v.writers = writer_bit ctx.pe.Pe.id then v.settled
        else t.epoch_tick
  in
  (match Cache.fill_tick ctx.pe.Pe.cache ~line with
  | Some ft when ft <= effective ->
      Cache.invalidate_line ctx.pe.Pe.cache ~line;
      ctx.pe.Pe.stats.Stats.invalidations <-
        ctx.pe.Pe.stats.Stats.invalidations + 1
  | Some _ | None -> ());
  cached_read ~track:true t ctx r idx addr tgt

(* ------------------------------------------------------------------ *)
(* Hardware-coherence rivals: MSI/MESI bus snooping and the full-map
   directory. Both keep the functional model write-through (memory is
   always current, so fills always deliver fresh words); the protocol
   state machines govern which copies stay readable and what every
   transition costs. Every remote-initiated action probes other PEs'
   caches without touching their LRU order, and all probe/invalidate
   loops run in ascending PE order — deterministic, so both engines
   replay identical sequences.                                         *)
(* ------------------------------------------------------------------ *)

(* Snoop phase of a bus transaction: probe every other cache. A read
   transaction ([invalidate = false]) downgrades E/M holders to S — a
   Modified holder first flushes, and the requester pays that flush. A
   write/upgrade transaction invalidates every remote copy. Returns
   (copies found, write-back penalty). Under [Drop_invalidate] sabotage
   the first copy an invalidation should kill survives — with identical
   accounting, which is exactly why only the staleness oracle (or the
   numerics) can witness the fault. *)
let snoop_others t ~self ~line ~invalidate =
  let copies = ref 0 and wb = ref 0 in
  let drop = ref (invalidate && t.sab = Drop_invalidate) in
  let n = Array.length t.ctxs in
  for p = 0 to n - 1 do
    if p <> self then begin
      let c = t.ctxs.(p).pe.Pe.cache in
      let st = Cache.line_state c ~line in
      if st <> Coherence.invalid then begin
        incr copies;
        if st = Coherence.modified then wb := t.cfg.Config.store_remote;
        if invalidate then begin
          if !drop then begin
            drop := false;
            t.sab_fired <- true
          end
          else Cache.invalidate_line c ~line
        end
        else if st > Coherence.shared then
          Cache.set_line_state c ~line Coherence.shared
      end
    end
  done;
  (!copies, !wb)

let snoop_read mesi t ctx (r : Reference.t) idx addr tgt =
  let off = Cache.locate ctx.pe.Pe.cache ~addr in
  if off >= 0 then begin
    (* any valid state (S/E/M) may be read locally, no bus transaction *)
    oracle_check t ctx r idx addr;
    ctx.pe.Pe.stats.Stats.hits <- ctx.pe.Pe.stats.Stats.hits + 1;
    Pe.advance ctx.pe t.cfg.Config.hit;
    Cache.data_at ctx.pe.Pe.cache off
  end
  else begin
    let self = ctx.pe.Pe.id in
    let line = addr / t.cfg.Config.line_words in
    (let s = ctx.pe.Pe.stats in
     if tgt < 0 then s.Stats.miss_local <- s.Stats.miss_local + 1
     else s.Stats.miss_remote <- s.Stats.miss_remote + 1);
    let ac = annex_cost t ctx tgt in
    let bus = bus_acquire t ctx ~lines:1 in
    let copies, wb = snoop_others t ~self ~line ~invalidate:false in
    let delay = contend t ctx tgt ~now:ctx.pe.Pe.clock ~lines:1 in
    Pe.advance ctx.pe (ac + bus + latency_of t ~pe:self tgt + delay + wb);
    (* MESI's one edge over MSI: a miss nobody else holds fills Exclusive,
       so the first write back to it upgrades silently *)
    let state =
      if mesi && copies = 0 then Coherence.exclusive else Coherence.shared
    in
    fill ~state t ctx line;
    t.mem.(addr)
  end

let snoop_write mesi t ctx wh ~addr =
  let line = addr / t.cfg.Config.line_words in
  let self = ctx.pe.Pe.id in
  let c = ctx.pe.Pe.cache in
  let st = Cache.line_state c ~line in
  if st = Coherence.modified then Pe.advance ctx.pe t.cfg.Config.store_local
  else if mesi && st = Coherence.exclusive then begin
    (* silent E -> M: exclusivity is already guaranteed, no bus traffic *)
    Cache.set_line_state c ~line Coherence.modified;
    Pe.advance ctx.pe t.cfg.Config.store_local
  end
  else begin
    let tgt = Addr_map.target_of wh ~pe:self ~addr in
    let s = ctx.pe.Pe.stats in
    let bus = bus_acquire t ctx ~lines:1 in
    let others, wb = snoop_others t ~self ~line ~invalidate:true in
    s.Stats.invalidations <- s.Stats.invalidations + others;
    if st <> Coherence.invalid then begin
      (* S -> M upgrade: an ownership broadcast, no data transfer *)
      s.Stats.upgrades <- s.Stats.upgrades + 1;
      Cache.set_line_state c ~line Coherence.modified;
      Pe.advance ctx.pe (store_cost t ~pe:self tgt + bus + wb)
    end
    else begin
      (* write miss: bus read-exclusive — fetch, invalidate, allocate M *)
      let ac = annex_cost t ctx tgt in
      let delay = contend t ctx tgt ~now:ctx.pe.Pe.clock ~lines:1 in
      Pe.advance ctx.pe (ac + bus + latency_of t ~pe:self tgt + delay + wb);
      fill ~state:Coherence.modified t ctx line
    end
  end

let dir_read d t ctx (r : Reference.t) idx addr tgt =
  let off = Cache.locate ctx.pe.Pe.cache ~addr in
  if off >= 0 then begin
    oracle_check t ctx r idx addr;
    ctx.pe.Pe.stats.Stats.hits <- ctx.pe.Pe.stats.Stats.hits + 1;
    Pe.advance ctx.pe t.cfg.Config.hit;
    Cache.data_at ctx.pe.Pe.cache off
  end
  else begin
    let self = ctx.pe.Pe.id in
    let line = addr / t.cfg.Config.line_words in
    let s = ctx.pe.Pe.stats in
    if tgt < 0 then s.Stats.miss_local <- s.Stats.miss_local + 1
    else s.Stats.miss_remote <- s.Stats.miss_remote + 1;
    let ac = annex_cost t ctx tgt in
    (* the line's directory home is co-located with its owner PE in the
       address map: [tgt < 0] means the reader itself is home *)
    let home = if tgt < 0 then self else tgt in
    let ow = Coherence.Dir.owner d ~line in
    let extra =
      if ow >= 0 && ow <> self then begin
        (* dirty remote copy: 3-hop forwarding — requester -> home (in the
           base latency), home -> owner, owner -> requester — plus the
           owner's flush; the owner downgrades M -> S and the line is
           clean again *)
        s.Stats.dir_msgs <- s.Stats.dir_msgs + 3;
        Cache.set_line_state t.ctxs.(ow).pe.Pe.cache ~line Coherence.shared;
        Coherence.Dir.set_owner d ~line (-1);
        Net.cost t.net ~src:home ~dst:ow
        + Net.cost t.net ~src:ow ~dst:self
        + t.cfg.Config.store_remote
      end
      else begin
        (* clean at home: request + data reply *)
        s.Stats.dir_msgs <- s.Stats.dir_msgs + 2;
        0
      end
    in
    let delay = contend t ctx tgt ~now:ctx.pe.Pe.clock ~lines:1 in
    Pe.advance ctx.pe (ac + latency_of t ~pe:self tgt + delay + extra);
    fill t ctx line;
    t.mem.(addr)
  end

let dir_write d t ctx wh ~addr =
  let line = addr / t.cfg.Config.line_words in
  let self = ctx.pe.Pe.id in
  let c = ctx.pe.Pe.cache in
  let st = Cache.line_state c ~line in
  if st = Coherence.modified then
    (* write hit on the owned copy: the directory already records self *)
    Pe.advance ctx.pe t.cfg.Config.store_local
  else begin
    let tgt = Addr_map.target_of wh ~pe:self ~addr in
    let home = if tgt < 0 then self else tgt in
    let s = ctx.pe.Pe.stats in
    s.Stats.dir_msgs <- s.Stats.dir_msgs + 2 (* request + grant *);
    let wb =
      let ow = Coherence.Dir.owner d ~line in
      if ow >= 0 && ow <> self then t.cfg.Config.store_remote else 0
    in
    (* invalidate every other recorded copy; acks return in parallel, so
       the wait is the worst home -> sharer round trip. Under
       [Corrupt_presence] sabotage the first sharer is dropped from the
       bitset instead — its stale copy survives, unrecorded. *)
    let max_hop = ref 0 and invs = ref 0 in
    let skip = ref (t.sab = Corrupt_presence) in
    Coherence.Dir.iter_sharers d ~line (fun p ->
        if p <> self then begin
          Coherence.Dir.remove d ~line ~pe:p;
          if !skip then begin
            skip := false;
            t.sab_fired <- true
          end
          else begin
            Cache.invalidate_line t.ctxs.(p).pe.Pe.cache ~line;
            incr invs;
            s.Stats.dir_msgs <- s.Stats.dir_msgs + 1;
            let h = Net.cost t.net ~src:home ~dst:p in
            if h > !max_hop then max_hop := h
          end
        end);
    s.Stats.invalidations <- s.Stats.invalidations + !invs;
    if st = Coherence.shared then s.Stats.upgrades <- s.Stats.upgrades + 1;
    let ack = 2 * !max_hop in
    if st = Coherence.invalid then begin
      (* write-allocate: fetch the line with exclusivity *)
      let ac = annex_cost t ctx tgt in
      let delay = contend t ctx tgt ~now:ctx.pe.Pe.clock ~lines:1 in
      Pe.advance ctx.pe (ac + latency_of t ~pe:self tgt + delay + wb + ack);
      fill ~state:Coherence.modified t ctx line
    end
    else begin
      Cache.set_line_state c ~line Coherence.modified;
      Pe.advance ctx.pe (store_cost t ~pe:self tgt + wb + ack)
    end;
    Coherence.Dir.set_owner d ~line self
  end

(* ------------------------------------------------------------------ *)
(* Coherence clusters: MESI snooping scoped to hardware-coherent
   islands, with the CCDP stale discipline across islands. A cluster
   read serves only data homed inside the requester's island (the
   dispatch falls back to the compiled CCDP route otherwise), so the
   protocol must keep exactly the island's copies of island-homed data
   coherent: an island write snoops its own bus, and a write landing in
   another island's home memory back-invalidates that island's copies
   (the CXL back-invalidation channel). Copies in third islands are
   allowed to go stale — their readers cross a cluster boundary and
   carry CCDP prefetch/bypass obligations.                              *)
(* ------------------------------------------------------------------ *)

(* Snoop phase scoped to one island: probe every other cache whose PE
   lives in [cluster]. Semantics mirror [snoop_others]; [sab] requests the
   Drop_inter_cluster_invalidate skip of the first copy (armed only for
   cross-cluster back-invalidations). *)
let snoop_cluster t ~cluster ~self ~line ~invalidate ~sab =
  let cp = Net.cluster_pes t.net in
  let lo = cluster * cp in
  let copies = ref 0 and wb = ref 0 in
  let drop = ref sab in
  for p = lo to lo + cp - 1 do
    if p <> self then begin
      let c = t.ctxs.(p).pe.Pe.cache in
      let st = Cache.line_state c ~line in
      if st <> Coherence.invalid then begin
        incr copies;
        if st = Coherence.modified then wb := t.cfg.Config.store_remote;
        if invalidate then begin
          if !drop then begin
            drop := false;
            t.sab_fired <- true
          end
          else Cache.invalidate_line c ~line
        end
        else if st > Coherence.shared then
          Cache.set_line_state c ~line Coherence.shared
      end
    end
  done;
  (!copies, !wb)

(* Intra-cluster read: MESI over the island. Reaches only addresses homed
   in the requester's island (or locally), so the latency model charges
   the cheap local rate and the transaction arbitrates the island's own
   bus. Every call is an access the flat machine would have sent across
   the interconnect under the stale discipline — counted as a cluster
   hit. *)
let cluster_read t ctx (r : Reference.t) idx addr tgt =
  let s = ctx.pe.Pe.stats in
  s.Stats.cluster_hits <- s.Stats.cluster_hits + 1;
  let off = Cache.locate ctx.pe.Pe.cache ~addr in
  if off >= 0 then begin
    oracle_check t ctx r idx addr;
    s.Stats.hits <- s.Stats.hits + 1;
    Pe.advance ctx.pe t.cfg.Config.hit;
    Cache.data_at ctx.pe.Pe.cache off
  end
  else begin
    let self = ctx.pe.Pe.id in
    let line = addr / t.cfg.Config.line_words in
    if tgt < 0 then s.Stats.miss_local <- s.Stats.miss_local + 1
    else s.Stats.miss_remote <- s.Stats.miss_remote + 1;
    let ac = annex_cost t ctx tgt in
    let bus = cluster_bus_acquire t ctx ~lines:1 in
    let copies, wb =
      snoop_cluster t
        ~cluster:(Net.cluster_of t.net self)
        ~self ~line ~invalidate:false ~sab:false
    in
    Pe.advance ctx.pe (ac + bus + latency_of t ~pe:self tgt + wb);
    (* island-exclusive fill when no island sibling holds a copy *)
    let state =
      if copies = 0 then Coherence.exclusive else Coherence.shared
    in
    fill ~state t ctx line;
    t.mem.(addr)
  end

(* Clustered write: snoop the writer's own island on every tracked write,
   plus the CXL-style back-invalidation — the write-through lands in the
   home memory, and when the home is another island that island's bus
   kills its local copies (which its own cluster reads would otherwise
   trust).

   No silent M/E write-hit shortcut, deliberately: unlike the flat MSI/
   MESI rivals (which run plan-free, so {e every} fill is a snooped bus
   transaction), the clustered machine keeps the CCDP plan alive for
   inter-island traffic, and the plan's prefetch/vector staging fills
   whole cache lines without touching any bus. A staged line can alias
   island-homed words, so "I hold M" never certifies "no sibling holds a
   copy" — skipping the snoop on a write hit would let a sibling's staged
   copy go silently stale right where its reads trust the island
   protocol. The write therefore always arbitrates the island bus and
   probes the siblings; states still track sharing for the read side
   (E/S fills, upgrade accounting). *)
let cluster_write t ctx wh ~addr =
  let line = addr / t.cfg.Config.line_words in
  let self = ctx.pe.Pe.id in
  let c = ctx.pe.Pe.cache in
  let s = ctx.pe.Pe.stats in
  let tgt = Addr_map.target_of wh ~pe:self ~addr in
  let home = if tgt < 0 then self else tgt in
  let my_cluster = Net.cluster_of t.net self in
  let home_cluster = Net.cluster_of t.net home in
  let bus = cluster_bus_acquire t ctx ~lines:1 in
  let own, wb_own =
    snoop_cluster t ~cluster:my_cluster ~self ~line ~invalidate:true ~sab:false
  in
  let inter, wb_home =
    if home_cluster = my_cluster then (0, 0)
    else
      snoop_cluster t ~cluster:home_cluster ~self ~line ~invalidate:true
        ~sab:(t.sab = Drop_inter_cluster_invalidate)
  in
  s.Stats.invalidations <- s.Stats.invalidations + own + inter;
  (let st = Cache.line_state c ~line in
   if st = Coherence.shared || st = Coherence.exclusive then begin
     s.Stats.upgrades <- s.Stats.upgrades + 1;
     Cache.set_line_state c ~line Coherence.modified
   end);
  Pe.advance ctx.pe (store_cost t ~pe:self tgt + bus + wb_own + wb_home)

(* The read protocol a reference executes, decided once per static
   reference (mode + classification + scheduled op + stale verdict never
   change during a run). *)
type route =
  | RPrivate  (** private / replicated data: cached and local in every mode *)
  | RPlain  (** ordinary tracked cached read *)
  | RIncoherent  (** tracked read with ground-truth staleness photography *)
  | RHscd
  | RUncached  (** BASE: shared data is not cached *)
  | RCovered  (** fresh-only cached read (stale covered reference) *)
  | RBypass
  | RBack of int  (** moved-back prefetch, issued this many cycles early *)
  | RLeadStaged  (** stale lead with SP/vector staging: staged-or-bypass *)
  | RSnoop of bool  (** MSI/MESI bus-snooped read ([true] = MESI) *)
  | RDir of Coherence.Dir.t  (** directory-protocol read *)
  | RCluster of route
      (** clustered: island-homed accesses snoop MESI inside the island;
          everything else falls back to the carried CCDP route. The
          same-cluster test is a per-access integer compare — the route
          pair itself is resolved once at preparation time. *)

(* The compiler-directed route of a tracked shared read: the CCDP plan's
   classification, demoted to plain caching wherever the stale verdict is
   Clean (pure latency hiding). Shared between the flat Ccdp mode and the
   clustered mode's inter-cluster fallback. *)
let ccdp_route t (r : Reference.t) =
  let open Ccdp_analysis in
  match Annot.cls_of t.pl r.id with
  | Annot.Normal -> RPlain
  | Annot.Covered _ ->
      (* a stale covered read may only hit lines its leader staged
         this epoch: at loop boundaries the covered span can reach one
         element past the leader's clamped range, and when chunk and
         line sizes misalign that element lands in a line the leader
         never touched — a leftover stale copy. Fresh-only turns that
         corner into a demand miss of current memory. Clean covers
         (latency-hiding groups) may trust any copy. *)
      if clean_lead t r.id then RPlain else RCovered
  | Annot.Bypass -> RBypass
  | Annot.Lead -> (
      match Annot.op_of t.pl r.id with
      | Some (Annot.Back { cycles; _ }) ->
          if clean_lead t r.id then RPlain else RBack cycles
      | Some (Annot.Pipelined _) | Some (Annot.Vector _) ->
          if clean_lead t r.id then RPlain else RLeadStaged
      | None -> RBypass)

let route_of t (r : Reference.t) =
  if not (tracked_shared t r.array_name) then RPrivate
  else
    match t.md with
    | Incoherent -> RIncoherent
    | Seq | Invalidate -> RPlain
    | Hscd -> RHscd
    | Base -> RUncached
    | Msi | Mesi | Directory -> (
        match t.hw with
        | Hw_snoop m -> RSnoop m
        | Hw_dir d -> RDir d
        | Hw_none | Hw_cluster -> assert false)
    | Ccdp -> ccdp_route t r
    | Clustered -> RCluster (ccdp_route t r)

let rec dispatch_read t ctx (r : Reference.t) ~idx ~addr ~tgt ~ver route =
  match route with
  | RPrivate -> cached_read t ctx r idx addr (-1)
  | RPlain -> cached_read ~track:true t ctx r idx addr tgt
  | RIncoherent ->
      (* ground-truth staleness detection: an incoherent read that returns a
         value other than the one settled for this epoch has observed an
         actually-stale copy. [filled_value] is memory itself when
         unbuffered; under buffering it is the epoch-deterministic settled
         value (own writes from memory, the rest from the barrier shadow),
         staged per-PE and merged at the barrier. *)
      let v = cached_read ~track:true t ctx r idx addr tgt in
      if v <> filled_value t ctx addr then
        if t.buffered then Hashtbl.replace ctx.pobs r.id ()
        else Hashtbl.replace t.observed_stale r.id ();
      v
  | RHscd -> hscd_read ver t ctx r idx addr tgt
  | RSnoop mesi -> snoop_read mesi t ctx r idx addr tgt
  | RDir d -> dir_read d t ctx r idx addr tgt
  | RUncached -> uncached_read t ctx addr tgt
  | RCovered -> cached_read ~fresh_only:true ~track:true t ctx r idx addr tgt
  | RBypass -> bypass_read t ctx addr tgt
  | RBack back -> moved_back_read t ctx addr tgt ~back
  | RLeadStaged ->
      (* the prefetch machinery must have staged the line: pending entries
         are consumed by the normal path; a fresh cached line is a earlier
         consume; anything else means the issue was dropped -> bypass fetch *)
      let line = addr / t.cfg.Config.line_words in
      if
        Hashtbl.mem ctx.vget line
        || Prefetch_queue.find ctx.pe.Pe.queue ~line <> None
        || Hashtbl.mem ctx.fresh line
      then cached_read ~fresh_only:true ~track:true t ctx r idx addr tgt
      else bypass_read t ctx addr tgt
  | RCluster inner ->
      (* resolved per access: island-homed data runs the island protocol,
         everything else falls through to the compiled CCDP route *)
      if tgt < 0 || Net.same_cluster t.net ctx.pe.Pe.id tgt then
        cluster_read t ctx r idx addr tgt
      else begin
        let s = ctx.pe.Pe.stats in
        s.Stats.cluster_inter <- s.Stats.cluster_inter + 1;
        dispatch_read t ctx r ~idx ~addr ~tgt ~ver inner
      end

let read t ~pe (r : Reference.t) ~idx =
  let ctx = t.ctxs.(pe) in
  ctx.pe.Pe.stats.Stats.reads <- ctx.pe.Pe.stats.Stats.reads + 1;
  let h = handle_of t r.array_name in
  let addr = Addr_map.resolve_h h ~pe idx in
  let tgt = Addr_map.target_of h ~pe ~addr in
  let ver = if t.md = Hscd then Hashtbl.find_opt t.versions r.array_name else None in
  dispatch_read t ctx r ~idx ~addr ~tgt ~ver (route_of t r)

(* ------------------------------------------------------------------ *)
(* Prepared accesses: the compiled-plan interpreter resolves the route,
   address handle and version record once per static reference, leaving
   pure arithmetic plus the protocol itself on the per-access path.        *)
(* ------------------------------------------------------------------ *)

type raccess = {
  ar : Reference.t;
  ah : Addr_map.handle;
  aroute : route;
  aver : version option;
}

let prepare_read t (r : Reference.t) =
  {
    ar = r;
    ah = handle_of t r.array_name;
    aroute = route_of t r;
    aver =
      (if t.md = Hscd && tracked_shared t r.array_name then
         Some (version_record t r.array_name)
       else None);
  }

let access_addr _t acc ~pe ~idx = Addr_map.resolve_h acc.ah ~pe idx

let read_c t ~pe acc ~idx ~addr =
  let ctx = t.ctxs.(pe) in
  ctx.pe.Pe.stats.Stats.reads <- ctx.pe.Pe.stats.Stats.reads + 1;
  dispatch_read t ctx acc.ar ~idx ~addr
    ~tgt:(Addr_map.target_of acc.ah ~pe ~addr)
    ~ver:acc.aver acc.aroute

(* The write protocol a tracked store executes, resolved once per static
   reference like the read route. [Wplain] is the established write-through
   costing; the hardware rivals additionally run their state machine. *)
type wproto =
  | Wplain
  | Wsnoop of bool
  | Wdir of Coherence.Dir.t
  | Wcluster  (** island MESI write + cross-island back-invalidation *)

type waccess = {
  wh : Addr_map.handle;
  wtracked : bool;
  wcaches : bool;
  wver : version option;
  wproto : wproto;
}

let prepare_write t (r : Reference.t) =
  let tracked = tracked_shared t r.array_name in
  {
    wh = handle_of t r.array_name;
    wtracked = tracked;
    wcaches = ((not tracked) || match t.md with Base -> false | _ -> true);
    wver =
      (if t.md = Hscd && tracked then Some (version_record t r.array_name)
       else None);
    wproto =
      (if not tracked then Wplain
       else
         match t.hw with
         | Hw_none -> Wplain
         | Hw_snoop m -> Wsnoop m
         | Hw_dir d -> Wdir d
         | Hw_cluster -> Wcluster);
  }

let write_addr _t wa ~pe ~idx = Addr_map.resolve_h wa.wh ~pe idx

let wlog_push ctx addr =
  let cap = Array.length ctx.wbuf in
  if ctx.wn = cap then begin
    let nb = Array.make (2 * cap) 0 in
    Array.blit ctx.wbuf 0 nb 0 cap;
    ctx.wbuf <- nb
  end;
  ctx.wbuf.(ctx.wn) <- addr;
  ctx.wn <- ctx.wn + 1

let write_c t ~pe wa ~addr v =
  let ctx = t.ctxs.(pe) in
  ctx.pe.Pe.stats.Stats.writes <- ctx.pe.Pe.stats.Stats.writes + 1;
  t.mem.(addr) <- v;
  let ver =
    if t.buffered then begin
      (* stamp + log; oracle version assignment and the shadow update are
         deferred to the barrier drain (PE-major), so the version clock is
         independent of shard interleaving. The writer's cached copy gets
         its version patched at the drain, once the version exists. *)
      t.wstamp.(addr) <- stamp_of t pe;
      wlog_push ctx addr;
      None
    end
    else
      match t.ora with
      | None -> None
      | Some o ->
          o.next_ver <- o.next_ver + 1;
          o.wver.(addr) <- o.next_ver;
          o.wepoch.(addr) <- t.epoch_tick;
          o.wpe.(addr) <- pe;
          Some o.next_ver
  in
  (match wa.wver with
  | Some vr -> vr.writers <- vr.writers lor writer_bit pe
  | None -> ());
  if wa.wcaches then Cache.update_if_present ctx.pe.Pe.cache ?ver ~addr v;
  match wa.wproto with
  | Wplain ->
      Pe.advance ctx.pe
        (if wa.wtracked then
           store_cost t ~pe (Addr_map.target_of wa.wh ~pe ~addr)
         else t.cfg.Config.store_local)
  | Wsnoop mesi -> snoop_write mesi t ctx wa.wh ~addr
  | Wdir d -> dir_write d t ctx wa.wh ~addr
  | Wcluster -> cluster_write t ctx wa.wh ~addr

let write t ~pe (r : Reference.t) ~idx v =
  let wa = prepare_write t r in
  let addr = Addr_map.resolve_h wa.wh ~pe idx in
  write_c t ~pe wa ~addr v

(* ------------------------------------------------------------------ *)
(* Prefetch issue                                                      *)
(* ------------------------------------------------------------------ *)

(* Under the clustered protocol, island-homed addresses are served
   coherently by [cluster_read] — which never consumes staged lines, so
   staging them would be a wasted transfer (and a wasted invalidation of a
   possibly-valid copy). The prefetch instruction itself still executes
   (the compiled code is mode-agnostic); only the transfer is elided. *)
let island_coherent t ~pe ~tgt =
  match t.hw with
  | Hw_cluster -> tgt < 0 || Net.same_cluster t.net pe tgt
  | Hw_none | Hw_snoop _ | Hw_dir _ -> false

let issue_prefetch_at ~skip_cached t ctx ~addr ~tgt =
  let lw = t.cfg.Config.line_words in
  let line = addr / lw in
  let already =
    island_coherent t ~pe:ctx.pe.Pe.id ~tgt
    || Hashtbl.mem ctx.vget line
    || Prefetch_queue.find ctx.pe.Pe.queue ~line <> None
    || ((skip_cached || Hashtbl.mem ctx.fresh line)
       && Cache.probe_line ctx.pe.Pe.cache ~line)
  in
  (* the prefetch instruction executes either way; the line transfer and
     queue slot are only committed when the line is not already staged *)
  Pe.advance ctx.pe t.cfg.Config.pf_issue;
  if not already then begin
    Pe.advance ctx.pe (annex_cost t ctx tgt);
    (* invalidate before issuing (paper Section 3): the stale copy must not
       be readable while the prefetch is in flight *)
    Cache.invalidate_line ctx.pe.Pe.cache ~line;
    Hashtbl.remove ctx.fresh line;
    let delay = contend t ctx tgt ~now:ctx.pe.Pe.clock ~lines:1 in
    let ready = ctx.pe.Pe.clock + latency_of t ~pe:ctx.pe.Pe.id tgt + delay in
    if Prefetch_queue.try_insert ctx.pe.Pe.queue ~line ~words:lw ~ready then
      ctx.pe.Pe.stats.Stats.pf_issued <- ctx.pe.Pe.stats.Stats.pf_issued + 1
    else ctx.pe.Pe.stats.Stats.pf_dropped <- ctx.pe.Pe.stats.Stats.pf_dropped + 1
  end

let issue_line_prefetch ?(skip_cached = false) t ~pe name ~idx =
  let h = handle_of t name in
  let addr = Addr_map.resolve_h h ~pe idx in
  issue_prefetch_at ~skip_cached t t.ctxs.(pe) ~addr
    ~tgt:(Addr_map.target_of h ~pe ~addr)

let pf_issue_c ?(skip_cached = false) t ~pe acc ~addr =
  issue_prefetch_at ~skip_cached t t.ctxs.(pe) ~addr
    ~tgt:(Addr_map.target_of acc.ah ~pe ~addr)

let line_of t ~pe name ~idx =
  let h = handle_of t name in
  Addr_map.resolve_h h ~pe idx / t.cfg.Config.line_words

let line_of_c t ~pe acc ~idx =
  Addr_map.resolve_h acc.ah ~pe idx / t.cfg.Config.line_words

let vget_issue_h ~skip_cached t ~pe h idxs =
  let ctx = t.ctxs.(pe) in
  let lw = t.cfg.Config.line_words in
  let lines = Hashtbl.create 64 in
  let ordered = ref [] in
  let first_target = ref (-1) in
  List.iter
    (fun idx ->
      let addr = Addr_map.resolve_h h ~pe idx in
      let tgt = Addr_map.target_of h ~pe ~addr in
      if !first_target < 0 && tgt >= 0 then first_target := tgt;
      let line = addr / lw in
      if not (Hashtbl.mem lines line) then begin
        Hashtbl.replace lines line ();
        (* skip lines this epoch's machinery already staged or fetched,
           and island-homed lines under the clustered protocol (served
           coherently; staging would only displace valid copies) *)
        if
          not
            (island_coherent t ~pe ~tgt
            || ((skip_cached || Hashtbl.mem ctx.fresh line)
               && Cache.probe_line ctx.pe.Pe.cache ~line)
            || Hashtbl.mem ctx.vget line)
        then ordered := line :: !ordered
      end)
    idxs;
  let ordered = List.rev !ordered in
  let n = List.length ordered in
  if Hashtbl.length lines > 0 then begin
    (* the block-transfer call is issued whenever the operation executes —
       a redundant vector prefetch still pays its start-up and translation
       overhead, even if every line turns out to be staged already *)
    let s = ctx.pe.Pe.stats in
    s.Stats.pf_vector <- s.Stats.pf_vector + 1;
    s.Stats.pf_vector_words <- s.Stats.pf_vector_words + (n * lw);
    let ac = annex_cost t ctx !first_target in
    (* one link booking for the whole block: a vector get streams all its
       lines through the owner's port back-to-back *)
    let delay =
      if n = 0 then 0
      else contend t ctx !first_target ~now:ctx.pe.Pe.clock ~lines:n
    in
    Pe.advance ctx.pe (ac + t.cfg.Config.vget_startup);
    List.iteri
      (fun k line ->
        Cache.invalidate_line ctx.pe.Pe.cache ~line;
        Hashtbl.remove ctx.fresh line;
        (* the staging buffer holds at most a cache's worth of in-flight
           vector data: staging beyond that displaces the oldest unconsumed
           lines — the eviction hazard that motivates the paper's one-level
           pulling restriction. Tombstoned FIFO entries (consumed or already
           displaced lines) are skipped without counting as evictions. *)
        while
          ctx.vget_words + lw > t.cfg.Config.cache_words
          && Hashtbl.length ctx.vget > 0
        do
          let oldest, gen = Queue.pop ctx.vq in
          match Hashtbl.find_opt ctx.vstamp oldest with
          | Some g when g = gen ->
              vget_consume ctx oldest lw;
              s.Stats.pf_evicted <- s.Stats.pf_evicted + 1
          | Some _ | None -> ()
        done;
        let ready =
          ctx.pe.Pe.clock + delay + ((k + 1) * lw * t.cfg.Config.vget_per_word)
        in
        if not (Hashtbl.mem ctx.vget line) then begin
          ctx.vgen <- ctx.vgen + 1;
          Hashtbl.replace ctx.vstamp line ctx.vgen;
          Queue.push (line, ctx.vgen) ctx.vq;
          ctx.vget_words <- ctx.vget_words + lw
        end;
        Hashtbl.replace ctx.vget line ready)
      ordered
  end

let vget_issue ?(skip_cached = false) t ~pe name idxs =
  vget_issue_h ~skip_cached t ~pe (handle_of t name) idxs

let vget_issue_c ?(skip_cached = false) t ~pe acc idxs =
  vget_issue_h ~skip_cached t ~pe acc.ah idxs

(* Barrier drain of the buffered-mode private ledgers, in PE-major order —
   the same order serial replay executes PEs in, so the settled versions,
   the violation log and the observed-stale set are identical for every
   shard count. Runs before the tick advances: the settling writes belong
   to the epoch that just ended. *)
let drain_buffered t =
  (match t.ora with
  | Some o ->
      Array.iter
        (fun ctx ->
          let cache = ctx.pe.Pe.cache in
          for i = 0 to ctx.wn - 1 do
            let a = ctx.wbuf.(i) in
            o.next_ver <- o.next_ver + 1;
            o.wver.(a) <- o.next_ver;
            o.wepoch.(a) <- t.epoch_tick;
            (* the write-through patched the writer's cached value; the
               version it carries settles here *)
            Cache.update_if_present cache ~ver:o.next_ver ~addr:a t.mem.(a);
            t.shadow.(a) <- t.mem.(a)
          done;
          ctx.wn <- 0)
        t.ctxs
  | None ->
      Array.iter
        (fun ctx ->
          for i = 0 to ctx.wn - 1 do
            let a = ctx.wbuf.(i) in
            t.shadow.(a) <- t.mem.(a)
          done;
          ctx.wn <- 0)
        t.ctxs);
  (match t.ora with
  | Some o ->
      let kept = ref (List.length o.violations) in
      Array.iter
        (fun ctx ->
          o.checked <- o.checked + ctx.pchecked;
          ctx.pchecked <- 0;
          List.iter
            (fun v ->
              if !kept < max_kept_violations then begin
                o.violations <- v :: o.violations;
                incr kept
              end)
            (List.rev ctx.pviol);
          o.n_violations <- o.n_violations + ctx.pnviol;
          ctx.pnviol <- 0;
          ctx.pviol <- [])
        t.ctxs
  | None -> ());
  Array.iter
    (fun ctx ->
      if Hashtbl.length ctx.pobs > 0 then begin
        Hashtbl.iter (fun id () -> Hashtbl.replace t.observed_stale id ()) ctx.pobs;
        Hashtbl.reset ctx.pobs
      end)
    t.ctxs

(* Whether DOALL epochs may execute with PEs sharded across domains: the
   mode must buffer every cross-PE effect until the barrier, and the
   link-contention model must be off (Net.acquire serializes bookings
   through shared per-link state mid-epoch). *)
(* Critical sections additionally forbid sharding: locked (bypassed) reads
   observe other PEs' current-epoch writes through [mem], so concurrent
   shards would race on it. *)
let shardable t = t.buffered && t.cfg.Config.link_occ = 0 && not t.has_sync

let epoch_boundary t =
  if t.buffered then drain_buffered t;
  Array.iter
    (fun ctx ->
      let leftovers = Hashtbl.length ctx.vget in
      ctx.pe.Pe.stats.Stats.pf_unused <-
        ctx.pe.Pe.stats.Stats.pf_unused + leftovers;
      Hashtbl.reset ctx.vget;
      Hashtbl.reset ctx.vstamp;
      Queue.clear ctx.vq;
      ctx.vget_words <- 0;
      Hashtbl.reset ctx.fresh)
    t.ctxs;
  Hashtbl.iter
    (fun _ v ->
      if v.writers <> 0 then begin
        v.settled <- t.epoch_tick;
        v.writers <- 0
      end)
    t.versions;
  t.epoch_tick <- t.epoch_tick + 1;
  (* the barrier drains the network: link bookings do not cross epochs *)
  Net.reset_links t.net;
  (* the barrier subsumes any lock release: lock state does not cross
     epochs either *)
  Hashtbl.reset t.locks;
  (match t.md with
  | Seq -> ()
  (* the hardware rivals keep cache and protocol state across epochs —
     coherence is maintained continuously, not at barriers *)
  | Base | Ccdp | Incoherent | Hscd | Msi | Mesi | Directory | Clustered ->
      Machine.barrier t.mach
  | Invalidate ->
      Machine.barrier t.mach;
      Array.iter
        (fun ctx ->
          Cache.invalidate_all ctx.pe.Pe.cache;
          ctx.pe.Pe.stats.Stats.invalidations <-
            ctx.pe.Pe.stats.Stats.invalidations + 1)
        t.ctxs);
  Array.iter (fun ctx -> ctx.epoch_start <- ctx.pe.Pe.clock) t.ctxs

let time t = Machine.time t.mach
let total_stats t = Machine.total_stats t.mach

let oracle_enabled t = t.ora <> None

(* The getters fold any not-yet-drained per-PE staging on top of the
   settled oracle state, so mid-epoch introspection (unit tests driving
   read/write without barriers) sees every assertion. *)
let oracle_checked t =
  match t.ora with
  | Some o -> Array.fold_left (fun acc ctx -> acc + ctx.pchecked) o.checked t.ctxs
  | None -> 0

let oracle_violation_count t =
  match t.ora with
  | Some o ->
      Array.fold_left (fun acc ctx -> acc + ctx.pnviol) o.n_violations t.ctxs
  | None -> 0

let oracle_violations t =
  match t.ora with
  | Some o ->
      let base = List.rev o.violations in
      let kept = ref (List.length base) in
      let staged =
        Array.fold_left
          (fun acc ctx ->
            List.fold_left
              (fun acc v ->
                if !kept < max_kept_violations then begin
                  incr kept;
                  v :: acc
                end
                else acc)
              acc (List.rev ctx.pviol))
          [] t.ctxs
      in
      base @ List.rev staged
  | None -> []

let pp_violation ppf v =
  Format.fprintf ppf
    "stale hit: ref %d on PE %d read %s(%s) [addr %d] in epoch %d; cached \
     version %d predates version %d written in epoch %d"
    v.v_ref v.v_pe v.v_array
    (String.concat "," (Array.to_list (Array.map string_of_int v.v_index)))
    v.v_addr v.v_read_epoch v.v_cached_version v.v_mem_version v.v_write_epoch

(* Protocol introspection (property tests): the per-PE line state and the
   directory's view of a line. *)
let line_state t ~pe ~line = Cache.line_state t.ctxs.(pe).pe.Pe.cache ~line

let dir_sharers t ~line =
  match t.hw with
  | Hw_dir d -> Coherence.Dir.sharers d ~line
  | Hw_none | Hw_snoop _ | Hw_cluster -> []

let dir_owner t ~line =
  match t.hw with
  | Hw_dir d -> Coherence.Dir.owner d ~line
  | Hw_none | Hw_snoop _ | Hw_cluster -> -1

let sabotage t = t.sab
let sabotage_fired t = t.sab_fired

let observed_stale_ids t =
  let tbl = Hashtbl.copy t.observed_stale in
  Array.iter
    (fun ctx -> Hashtbl.iter (fun id () -> Hashtbl.replace tbl id ()) ctx.pobs)
    t.ctxs;
  Hashtbl.fold (fun id () acc -> id :: acc) tbl [] |> List.sort compare

let stale_cached_words t =
  let lw = t.cfg.Config.line_words in
  let count = ref 0 in
  Array.iter
    (fun ctx ->
      for addr = 0 to Array.length t.mem - 1 do
        ignore lw;
        match Cache.peek ctx.pe.Pe.cache ~addr with
        | Some v when v <> t.mem.(addr) -> incr count
        | Some _ | None -> ()
      done)
    t.ctxs;
  !count
