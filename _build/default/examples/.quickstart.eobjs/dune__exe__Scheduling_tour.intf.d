examples/scheduling_tour.mli:
