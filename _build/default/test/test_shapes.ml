(* Shape regression: the paper's qualitative results, asserted.

   These are the claims EXPERIMENTS.md makes; if a model change breaks one,
   the reproduction story changed and the docs must be revisited. Bands are
   deliberately generous — this is a tripwire, not a golden file. *)

open Ccdp_workloads
open Ccdp_core
open Ccdp_test_support.Tutil

let rows =
  lazy
    (let spec =
       { Experiment.default_spec with Experiment.pes = [ 4; 16 ]; verify = true }
     in
     Experiment.evaluate ~spec (Suite.spec_four ~n:48 ~iters:2 ()))

let at name pes =
  List.find
    (fun (r : Experiment.row) -> r.Experiment.workload = name && r.Experiment.pes = pes)
    (Lazy.force rows)

let imp name pes = Experiment.improvement (at name pes)

let table_shapes =
  [
    case "everything verifies" (fun () ->
        List.iter
          (fun (r : Experiment.row) ->
            check_true "base" r.Experiment.base_ok;
            check_true "ccdp" r.Experiment.ccdp_ok)
          (Lazy.force rows));
    case "MXM improvement is huge (paper: 64.5-89.8%)" (fun () ->
        check_true "band" (imp "mxm" 16 > 50.0 && imp "mxm" 16 < 95.0));
    case "VPENTA improvement is small (paper: 4.4-23.9%)" (fun () ->
        check_true "band" (imp "vpenta" 16 > 2.0 && imp "vpenta" 16 < 25.0));
    case "TOMCATV improvement is large (paper: 44.8-69.6%)" (fun () ->
        check_true "band" (imp "tomcatv" 16 > 25.0 && imp "tomcatv" 16 < 75.0));
    case "SWIM improvement is modest (paper: 2.5-13.2%)" (fun () ->
        (* at this test's scaled size (n=48, chunk=3 columns/PE) the halo
           fraction is inflated ~3x vs the paper's n=513; the full-scale
           bench sits in the paper band, here we only pin the order of
           magnitude *)
        check_true "band" (imp "swim" 16 > 0.0 && imp "swim" 16 < 40.0));
    case "ordering: MXM > TOMCATV > SWIM and VPENTA" (fun () ->
        check_true "mxm top" (imp "mxm" 16 > imp "tomcatv" 16);
        check_true "tomcatv second" (imp "tomcatv" 16 > imp "swim" 16);
        check_true "tomcatv above vpenta" (imp "tomcatv" 16 > imp "vpenta" 16));
    case "MXM BASE barely scales while CCDP does" (fun () ->
        let r = at "mxm" 16 in
        check_true "base poor" (Experiment.base_speedup r < 6.0);
        check_true "ccdp scales" (Experiment.ccdp_speedup r > 6.0));
    case "VPENTA is near-linear in both versions" (fun () ->
        let r = at "vpenta" 16 in
        check_true "base" (Experiment.base_speedup r > 12.0);
        check_true "ccdp" (Experiment.ccdp_speedup r > 14.0));
    case "SWIM BASE is healthy (the paper's observation)" (fun () ->
        check_true "base good" (Experiment.base_speedup (at "swim" 16) > 10.0));
  ]

let () = Alcotest.run "shapes" [ ("paper-claims", table_shapes) ]
