open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let cfg = Ccdp_machine.Config.tiny ~n_pes:4
(* tiny: hit=1 store=1 flop=1 loop_overhead=1 *)

let env = Iterspace.of_loops ~params:[ ("n", 8) ] []

let b_with_array () =
  let b = B.create ~name:"v" () in
  B.array_ b "A" [| 8; 8 |];
  b

let tests =
  [
    case "a bare assignment costs flops + reads + store" (fun () ->
        let b = b_with_array () in
        let open B.A in
        (* 2 flops + 2 reads (hit 1 each) + 1 store *)
        let s =
          B.assign b "A" [ c 0; c 0 ]
            F.(B.rd b "A" [ c 1; c 0 ] + (B.rd b "A" [ c 2; c 0 ] * const 2.0))
        in
        check_int "cycles" (2 + 2 + 1) (Volume.stmts_cycles cfg env [ s ]));
    case "scalar assignments cost their flops" (fun () ->
        check_int "one flop" 1
          (Volume.stmts_cycles cfg env
             [ Stmt.Sassign ("x", F.(const 1.0 + const 2.0)) ]));
    case "branches contribute their larger arm" (fun () ->
        let cheap = [ Stmt.Sassign ("x", F.const 1.0) ] in
        let pricey =
          [ Stmt.Sassign ("x", F.(const 1.0 + (const 2.0 * const 3.0))) ]
        in
        let s = Stmt.If (Stmt.Icond (Stmt.Lt, Affine.zero, Affine.one), cheap, pricey) in
        check_int "max arm" 2 (Volume.stmts_cycles cfg env [ s ]));
    case "nested loops multiply by their trip count" (fun () ->
        let b = b_with_array () in
        let open B.A in
        let s =
          B.for_ b "i" (bc 0) (bc 7)
            [ B.assign b "A" [ v "i"; c 0 ] (F.const 1.0) ]
        in
        (* 8 * (store 1 + loop 1) *)
        check_int "loop volume" 16 (Volume.stmts_cycles cfg env [ s ]));
    case "unknown trips fall back to the default" (fun () ->
        let b = b_with_array () in
        let s =
          B.for_ b "i" (B.A.bc 0) Bound.unknown
            [ B.assign b "A" [ B.A.v "i"; B.A.c 0 ] (F.const 1.0) ]
        in
        check_int "default 8" 16 (Volume.stmts_cycles cfg ~default_trip:8 env [ s ]);
        check_int "default 2" 4 (Volume.stmts_cycles cfg ~default_trip:2 env [ s ]));
    case "iter_cycles is the per-iteration cost" (fun () ->
        let b = b_with_array () in
        let open B.A in
        let l =
          match
            B.for_ b "i" (bc 0) (bc 7)
              [ B.assign b "A" [ v "i"; c 0 ] (B.rd b "A" [ v "i"; c 1 ]) ]
          with
          | Stmt.For l -> l
          | _ -> assert false
        in
        (* read 1 + store 1 + loop 1 *)
        check_int "per iter" 3 (Volume.iter_cycles cfg env l));
    case "words_read_per_iter counts shared reads" (fun () ->
        let b = b_with_array () in
        let open B.A in
        let l =
          match
            B.for_ b "i" (bc 0) (bc 7)
              [
                B.assign b "A" [ v "i"; c 0 ]
                  F.(B.rd b "A" [ v "i"; c 1 ] + B.rd b "A" [ v "i"; c 2 ]);
              ]
          with
          | Stmt.For l -> l
          | _ -> assert false
        in
        check_int "2 words" 2
          (Volume.words_read_per_iter
             ~decl_of:(fun _ -> Array_decl.make "A" [| 8; 8 |])
             l));
  ]

let () = Alcotest.run "volume" [ ("estimation", tests) ]
