open Ccdp_machine
open Ccdp_runtime
open Ccdp_workloads
module Pool = Ccdp_exec.Pool

type row = {
  workload : string;
  pes : int;
  seq_cycles : int;
  base_cycles : int;
  ccdp_cycles : int;
  base_ok : bool;
  ccdp_ok : bool;
  ccdp_stats : Stats.t;
}

let base_speedup r = float_of_int r.seq_cycles /. float_of_int r.base_cycles
let ccdp_speedup r = float_of_int r.seq_cycles /. float_of_int r.ccdp_cycles

let improvement r =
  100.0 *. (float_of_int (r.base_cycles - r.ccdp_cycles) /. float_of_int r.base_cycles)

type spec = { pes : int list; verify : bool; tuning : Ccdp_analysis.Schedule.tuning }

let default_spec =
  {
    pes = [ 1; 2; 4; 8; 16; 32; 64 ];
    verify = true;
    tuning = Ccdp_analysis.Schedule.default_tuning;
  }

(* [jobs]: intra-run shard count for the epoch simulation (see
   Interp.run's [pool]); [None] — the default, and what [evaluate]'s grid
   cells use from inside their own pool tasks — runs the serial walk
   without creating any pool. *)
let run_mode ?tuning ?(machine = Config.t3d) ?jobs ~n_pes mode (w : Workload.t)
    =
  let go ?pool () =
    let cfg = machine ~n_pes in
    match mode with
    | Memsys.Ccdp ->
        let compiled = Pipeline.compile cfg ?tuning w.program in
        Interp.run cfg ?pool compiled.Pipeline.program
          ~plan:compiled.Pipeline.plan ~mode ()
    | Memsys.Clustered ->
        (* the clustered runtime still consumes a CCDP plan for its
           inter-island traffic; compiling with the cluster-aware
           discharge drops the obligations the island snoop makes
           redundant *)
        let compiled =
          Pipeline.compile cfg ?tuning ~cluster_coherent:true w.program
        in
        Interp.run cfg ?pool compiled.Pipeline.program
          ~plan:compiled.Pipeline.plan ~mode ()
    | Memsys.Seq ->
        let cfg = machine ~n_pes:1 in
        Interp.run cfg ?pool
          (Ccdp_ir.Program.inline w.program)
          ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ()
    | Memsys.Base | Memsys.Invalidate | Memsys.Incoherent | Memsys.Hscd
    | Memsys.Msi | Memsys.Mesi | Memsys.Directory ->
        Interp.run cfg ?pool
          (Ccdp_ir.Program.inline w.program)
          ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ()
  in
  match jobs with
  | Some j when j > 1 -> Pool.with_pool ~jobs:j (fun pool -> go ~pool ())
  | _ -> go ()

(* The grid is embarrassingly parallel: every Interp.run allocates its
   whole machine state, so (workload, width) cells run on any domain in
   any order. Results are collected by index (Pool.map_runs), which makes
   the row list byte-identical to the sequential construction. *)
let evaluate ?jobs ?(spec = default_spec) workloads =
  Pool.with_pool ?jobs (fun pool ->
      let seqs =
        Pool.map_runs pool
          ~label:(fun i -> "seq:" ^ (List.nth workloads i).Workload.name)
          (fun _ (w : Workload.t) -> run_mode ~n_pes:1 Memsys.Seq w)
          workloads
      in
      let units =
        List.concat_map
          (fun (w, seq) -> List.map (fun n_pes -> (w, seq, n_pes)) spec.pes)
          (List.combine workloads seqs)
      in
      Pool.map_runs pool
        ~label:(fun i ->
          let (w : Workload.t), _, n_pes = List.nth units i in
          Printf.sprintf "%s@%dpe" w.Workload.name n_pes)
        (fun _ ((w : Workload.t), (seq : Interp.result), n_pes) ->
          let check (r : Interp.result) =
            if not spec.verify then true
            else
              (Verify.compare_states ~expected:seq.Interp.sys ~got:r.Interp.sys
                 (Ccdp_ir.Program.inline w.program))
                .Verify.ok
          in
          let base = run_mode ~n_pes Memsys.Base w in
          let ccdp = run_mode ~tuning:spec.tuning ~n_pes Memsys.Ccdp w in
          {
            workload = w.name;
            pes = n_pes;
            seq_cycles = seq.Interp.cycles;
            base_cycles = base.Interp.cycles;
            ccdp_cycles = ccdp.Interp.cycles;
            base_ok = check base;
            ccdp_ok = check ccdp;
            ccdp_stats = ccdp.Interp.stats;
          })
        units)

let workload_names rows =
  List.fold_left
    (fun acc r -> if List.mem r.workload acc then acc else acc @ [ r.workload ])
    [] rows

let pe_counts rows =
  List.sort_uniq compare (List.map (fun (r : row) -> r.pes) rows)

(* ------------------------------------------------------------------ *)
(* Tables as values                                                    *)
(* ------------------------------------------------------------------ *)

type table = { title : string; headers : string list; trows : string list list }

let print_tbl ppf t = Report.table ppf ~title:t.title ~headers:t.headers t.trows

let table1 rows =
  let names = workload_names rows in
  let headers =
    "#PEs"
    :: List.concat_map (fun n -> [ n ^ " BASE"; n ^ " CCDP" ]) names
  in
  let body =
    List.map
      (fun p ->
        string_of_int p
        :: List.concat_map
             (fun name ->
               match
                 List.find_opt
                   (fun (r : row) -> r.workload = name && r.pes = p)
                   rows
               with
               | Some r ->
                   let tag b = if b then "" else "!" in
                   [
                     Report.fx (base_speedup r) ^ tag r.base_ok;
                     Report.fx (ccdp_speedup r) ^ tag r.ccdp_ok;
                   ]
               | None -> [ "-"; "-" ])
             names)
      (pe_counts rows)
  in
  {
    title =
      "Table 1. Speedups over sequential execution time ('!' marks a failed \
       numeric verification)";
    headers;
    trows = body;
  }

let table2 rows =
  let names = workload_names rows in
  let headers = "#PEs" :: names in
  let body =
    List.map
      (fun p ->
        string_of_int p
        :: List.map
             (fun name ->
               match
                 List.find_opt
                   (fun (r : row) -> r.workload = name && r.pes = p)
                   rows
               with
               | Some r -> Report.fpct (improvement r)
               | None -> "-")
             names)
      (pe_counts rows)
  in
  {
    title = "Table 2. Improvement in execution time of CCDP codes over BASE codes";
    headers;
    trows = body;
  }

let print_table1 ppf rows = print_tbl ppf (table1 rows)
let print_table2 ppf rows = print_tbl ppf (table2 rows)

let csv_rows ppf rows =
  Report.csv ppf
    ~headers:
      [
        "workload"; "pes"; "seq_cycles"; "base_cycles"; "ccdp_cycles";
        "base_speedup"; "ccdp_speedup"; "improvement_pct"; "base_verified";
        "ccdp_verified";
      ]
    (List.map
       (fun (r : row) ->
         [
           r.workload;
           string_of_int r.pes;
           string_of_int r.seq_cycles;
           string_of_int r.base_cycles;
           string_of_int r.ccdp_cycles;
           Printf.sprintf "%.4f" (base_speedup r);
           Printf.sprintf "%.4f" (ccdp_speedup r);
           Printf.sprintf "%.2f" (improvement r);
           string_of_bool r.base_ok;
           string_of_bool r.ccdp_ok;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* Each ablation's rows are independent (one per workload, or one per
   sweep point), so the row list is a Pool.run over them; per-row run
   order is preserved inside the closure. *)

let map_workload_rows ?jobs (workloads : Workload.t list) f =
  Pool.run ?jobs
    ~label:(fun i -> (List.nth workloads i).Workload.name)
    (fun _ w -> f w)
    workloads

let ccdp_cycles_with ~n_pes ?tuning ?innermost_only ?group_spatial
    (w : Workload.t) =
  let cfg = Config.t3d ~n_pes in
  let compiled =
    Pipeline.compile cfg ?tuning ?innermost_only ?group_spatial w.program
  in
  (Interp.run cfg compiled.Pipeline.program ~plan:compiled.Pipeline.plan
     ~mode:Memsys.Ccdp ())
    .Interp.cycles

let ablation_target_table ?(n_pes = 16) ?jobs workloads =
  let rows =
    map_workload_rows ?jobs workloads (fun (w : Workload.t) ->
        let full = ccdp_cycles_with ~n_pes w in
        let no_group = ccdp_cycles_with ~n_pes ~group_spatial:false w in
        let all_stale =
          ccdp_cycles_with ~n_pes ~group_spatial:false ~innermost_only:false w
        in
        [
          w.name;
          string_of_int full;
          string_of_int no_group;
          string_of_int all_stale;
          Report.fpct (100. *. float_of_int (no_group - full) /. float_of_int full);
          Report.fpct (100. *. float_of_int (all_stale - full) /. float_of_int full);
        ])
  in
  {
    title =
      Printf.sprintf
        "Ablation A (%d PEs): prefetch target analysis off (cycles; lower is \
         better)" n_pes;
    headers =
      [
        "workload"; "full"; "no group-spatial"; "no target analysis";
        "groups save"; "target saves";
      ];
    trows = rows;
  }

let ablation_technique_table ?(n_pes = 16) ?jobs workloads =
  let open Ccdp_analysis.Schedule in
  let t0 = default_tuning in
  let variants =
    [
      ("all", t0);
      ("VPG only", { t0 with allow_sp = false; allow_mbp = false });
      ("SP only", { t0 with allow_vpg = false; allow_mbp = false });
      ("MBP only", { t0 with allow_vpg = false; allow_sp = false });
    ]
  in
  let rows =
    map_workload_rows ?jobs workloads (fun (w : Workload.t) ->
        w.name
        :: List.map
             (fun (_, tuning) ->
               string_of_int (ccdp_cycles_with ~n_pes ~tuning w))
             variants)
  in
  {
    title =
      Printf.sprintf "Ablation B (%d PEs): single scheduling technique (cycles)"
        n_pes;
    headers = "workload" :: List.map fst variants;
    trows = rows;
  }

let ablation_coherence_table ?(n_pes = 16) ?jobs workloads =
  let rows =
    map_workload_rows ?jobs workloads (fun (w : Workload.t) ->
        let base = (run_mode ~n_pes Memsys.Base w).Interp.cycles in
        let inv = (run_mode ~n_pes Memsys.Invalidate w).Interp.cycles in
        let hscd = (run_mode ~n_pes Memsys.Hscd w).Interp.cycles in
        let ccdp = (run_mode ~n_pes Memsys.Ccdp w).Interp.cycles in
        [
          w.name;
          string_of_int base;
          string_of_int inv;
          string_of_int hscd;
          string_of_int ccdp;
          Report.fpct (100. *. float_of_int (base - ccdp) /. float_of_int base);
          Report.fpct (100. *. float_of_int (inv - ccdp) /. float_of_int inv);
          Report.fpct (100. *. float_of_int (hscd - ccdp) /. float_of_int hscd);
        ])
  in
  {
    title =
      Printf.sprintf
        "Ablation C (%d PEs): coherence schemes (cycles; uncached BASE, \
         epoch-invalidate, version-based HSCD, CCDP)" n_pes;
    headers =
      [ "workload"; "BASE"; "INV"; "HSCD"; "CCDP"; "vs BASE"; "vs INV";
        "vs HSCD" ];
    trows = rows;
  }

let ablation_prefetch_clean_table ?(n_pes = 16) ?jobs workloads =
  let rows =
    map_workload_rows ?jobs workloads (fun (w : Workload.t) ->
        let cfg = Config.t3d ~n_pes in
        let run ?prefetch_clean () =
          let c = Pipeline.compile cfg ?prefetch_clean w.program in
          Interp.run cfg c.Pipeline.program ~plan:c.Pipeline.plan
            ~mode:Memsys.Ccdp ()
        in
        let ccdp = run () in
        let plus = run ~prefetch_clean:true () in
        [
          w.name;
          string_of_int ccdp.Interp.cycles;
          string_of_int plus.Interp.cycles;
          Report.fpct
            (100.
            *. float_of_int (ccdp.Interp.cycles - plus.Interp.cycles)
            /. float_of_int ccdp.Interp.cycles);
          string_of_int (Stats.total_prefetches plus.Interp.stats);
        ])
  in
  {
    title =
      Printf.sprintf
        "Experiment E (%d PEs): CCDP + prefetching of non-stale references           (the paper's future work)" n_pes;
    headers = [ "workload"; "CCDP"; "CCDP+clean"; "extra gain"; "prefetches" ];
    trows = rows;
  }

let ablation_vpg_levels_table ?(n_pes = 16) ?jobs workloads =
  let open Ccdp_analysis.Schedule in
  let run tuning (w : Workload.t) =
    let cfg = Config.t3d ~n_pes in
    let c = Pipeline.compile cfg ~tuning w.program in
    Interp.run cfg c.Pipeline.program ~plan:c.Pipeline.plan ~mode:Memsys.Ccdp ()
  in
  let rows =
    map_workload_rows ?jobs workloads (fun (w : Workload.t) ->
        let one = run default_tuning w in
        let two = run { default_tuning with vpg_levels = 2 } w in
        [
          w.name;
          string_of_int one.Interp.cycles;
          string_of_int two.Interp.cycles;
          Report.fpct
            (100.
            *. float_of_int (one.Interp.cycles - two.Interp.cycles)
            /. float_of_int one.Interp.cycles);
          string_of_int two.Interp.stats.Stats.pf_evicted;
        ])
  in
  {
    title =
      Printf.sprintf
        "Experiment G (%d PEs): one-level vs multi-level vector-prefetch           pulling (the paper's Gornish modification)" n_pes;
    headers = [ "workload"; "1-level"; "2-level"; "2-level gain"; "evicted" ];
    trows = rows;
  }

let ablation_topology_table ?(n_pes = 64) ?jobs workloads =
  let run cfg mode (w : Workload.t) =
    match mode with
    | Memsys.Ccdp ->
        let c = Pipeline.compile cfg w.program in
        (Interp.run cfg c.Pipeline.program ~plan:c.Pipeline.plan ~mode ())
          .Interp.cycles
    | _ ->
        (Interp.run cfg
           (Ccdp_ir.Program.inline w.program)
           ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ())
          .Interp.cycles
  in
  let rows =
    map_workload_rows ?jobs workloads (fun (w : Workload.t) ->
        let flat = Config.t3d ~n_pes and torus = Config.t3d_torus ~n_pes in
        let bf = run flat Memsys.Base w and bt = run torus Memsys.Base w in
        let cf = run flat Memsys.Ccdp w and ct = run torus Memsys.Ccdp w in
        [
          w.name;
          string_of_int bf;
          string_of_int bt;
          string_of_int cf;
          string_of_int ct;
          Report.fpct (100. *. float_of_int (bt - ct) /. float_of_int bt);
        ])
  in
  {
    title =
      Printf.sprintf
        "Experiment F (%d PEs): uniform remote latency vs 3-D torus distance           model (cycles)" n_pes;
    headers =
      [ "workload"; "BASE flat"; "BASE torus"; "CCDP flat"; "CCDP torus";
        "torus improvement" ];
    trows = rows;
  }

(* ------------------------------------------------------------------ *)
(* Machine sweep                                                       *)
(* ------------------------------------------------------------------ *)

(* The four T3D interconnect variants, in the order the table reports
   them. [t3d] is the uniform-latency paper machine; the others move part
   of the remote latency into the distance model (and, for the crossbar,
   the shared-port contention model). *)
let machine_presets =
  [
    ("t3d", Config.t3d);
    ("t3d-torus", Config.t3d_torus);
    ("t3d-mesh", Config.t3d_mesh);
    ("t3d-xbar", Config.t3d_xbar);
  ]

let machines_table ?(n_pes = 16) ?only ?jobs workloads =
  let machines =
    match only with
    | None -> machine_presets
    | Some name -> (
        match Config.preset_of_string name with
        | Some p -> [ (String.lowercase_ascii name, p) ]
        | None -> invalid_arg ("unknown machine preset: " ^ name))
  in
  let units =
    List.concat_map (fun w -> List.map (fun m -> (w, m)) machines) workloads
  in
  let rows =
    Pool.run ?jobs
      ~label:(fun i ->
        let (w : Workload.t), (mname, _) = List.nth units i in
        w.Workload.name ^ "@" ^ mname)
      (fun _ ((w : Workload.t), (mname, preset)) ->
        let base = run_mode ~machine:preset ~n_pes Memsys.Base w in
        let ccdp = run_mode ~machine:preset ~n_pes Memsys.Ccdp w in
        let s = ccdp.Interp.stats in
        [
          w.Workload.name;
          mname;
          string_of_int base.Interp.cycles;
          string_of_int ccdp.Interp.cycles;
          Report.fpct
            (100.
            *. float_of_int (base.Interp.cycles - ccdp.Interp.cycles)
            /. float_of_int base.Interp.cycles);
          string_of_int s.Stats.link_conflicts;
          string_of_int s.Stats.link_occ_max;
        ])
      units
  in
  {
    title =
      Printf.sprintf
        "Machine sweep (%d PEs): workload x mode x interconnect (cycles)"
        n_pes;
    headers =
      [
        "workload"; "machine"; "BASE"; "CCDP"; "improvement"; "link conflicts";
        "max link occ";
      ];
    trows = rows;
  }

let machines ?n_pes ?only workloads ppf =
  print_tbl ppf (machines_table ?n_pes ?only workloads)

(* ------------------------------------------------------------------ *)
(* Coherence-cluster sweep                                             *)
(* ------------------------------------------------------------------ *)

(* The CXL-style island presets share the crossbar fabric with t3d-xbar,
   so the honest anchors are flat CCDP and the flat full-map directory on
   t3d-xbar: same distance model, same shared-port contention, no
   islands. A positive "vs" column means the islands won. *)
let cluster_presets =
  [
    ("cxl-2x32", Config.cxl_2x32);
    ("cxl-4x16", Config.cxl_4x16);
    ("cxl-8x8", Config.cxl_8x8);
  ]

let clusters_table ?(n_pes = 16) ?only ?jobs workloads =
  let presets =
    match only with
    | None -> cluster_presets
    | Some name ->
        let name = String.lowercase_ascii name in
        List.filter (fun (mname, _) -> mname = name) cluster_presets
  in
  let groups =
    if presets = [] then []
    else
      Pool.run ?jobs
        ~label:(fun i -> (List.nth workloads i).Workload.name ^ "@clusters")
        (fun _ (w : Workload.t) ->
          let ccdp = run_mode ~machine:Config.t3d_xbar ~n_pes Memsys.Ccdp w in
          let dir =
            run_mode ~machine:Config.t3d_xbar ~n_pes Memsys.Directory w
          in
          List.map
            (fun (mname, preset) ->
              let clu = run_mode ~machine:preset ~n_pes Memsys.Clustered w in
              let s = clu.Interp.stats in
              let pct (anchor : Interp.result) =
                Report.fpct
                  (100.
                  *. float_of_int (anchor.Interp.cycles - clu.Interp.cycles)
                  /. float_of_int anchor.Interp.cycles)
              in
              [
                w.Workload.name;
                mname;
                string_of_int clu.Interp.cycles;
                string_of_int ccdp.Interp.cycles;
                string_of_int dir.Interp.cycles;
                pct ccdp;
                pct dir;
                string_of_int s.Stats.cluster_hits;
                string_of_int s.Stats.cluster_inter;
                string_of_int s.Stats.bus_conflicts;
              ])
            presets)
        workloads
  in
  {
    title =
      Printf.sprintf
        "Coherence-cluster sweep (%d PEs): CLU on the CXL island presets \
         vs flat CCDP and the flat directory on the same crossbar fabric \
         (cycles; positive %% = islands win)"
        n_pes;
    headers =
      [
        "workload"; "machine"; "CLU"; "flat CCDP"; "flat DIR";
        "vs flat CCDP"; "vs flat DIR"; "cluster hits"; "cluster inter";
        "bus conflicts";
      ];
    trows = List.concat groups;
  }

let clusters ?n_pes ?only workloads ppf =
  print_tbl ppf (clusters_table ?n_pes ?only workloads)

(* ------------------------------------------------------------------ *)
(* Hardware-coherence rivals sweep                                     *)
(* ------------------------------------------------------------------ *)

type rival_row = {
  rv_workload : string;
  rv_machine : string;
  rv_mode : string;
  rv_pes : int;
  rv_cycles : int;
  rv_norm : float;  (** execution time normalized to BASE (same cell) *)
  rv_ok : bool;
  rv_stats : Stats.t;
}

(* BASE is the normalization anchor; CCDP, the two snooping flavours and
   the directory are the contenders. *)
let rival_modes =
  [ Memsys.Base; Memsys.Ccdp; Memsys.Msi; Memsys.Mesi; Memsys.Directory ]

(* One distance-modelled machine per contention regime: the torus spreads
   traffic over per-destination ports, the crossbar funnels it through
   shared ports — and the snooping bus serializes on both, which is the
   sweep's payoff at high PE counts. *)
let rival_machines =
  [ ("t3d-torus", Config.t3d_torus); ("t3d-xbar", Config.t3d_xbar) ]

let rivals_rows ?(n_pes = 64) ?jobs workloads =
  Pool.with_pool ?jobs (fun pool ->
      let seqs =
        Pool.map_runs pool
          ~label:(fun i -> "seq:" ^ (List.nth workloads i).Workload.name)
          (fun _ (w : Workload.t) -> run_mode ~n_pes:1 Memsys.Seq w)
          workloads
      in
      let units =
        List.concat_map
          (fun (w, seq) -> List.map (fun m -> (w, seq, m)) rival_machines)
          (List.combine workloads seqs)
      in
      let groups =
        Pool.map_runs pool
          ~label:(fun i ->
            let (w : Workload.t), _, (mname, _) = List.nth units i in
            w.Workload.name ^ "@" ^ mname)
          (fun _ ((w : Workload.t), (seq : Interp.result), (mname, preset)) ->
            let inlined = Ccdp_ir.Program.inline w.program in
            let base = run_mode ~machine:preset ~n_pes Memsys.Base w in
            List.map
              (fun mode ->
                let r =
                  if mode = Memsys.Base then base
                  else run_mode ~machine:preset ~n_pes mode w
                in
                let ok =
                  (Verify.compare_states ~expected:seq.Interp.sys
                     ~got:r.Interp.sys inlined)
                    .Verify.ok
                in
                {
                  rv_workload = w.name;
                  rv_machine = mname;
                  rv_mode = Memsys.mode_name mode;
                  rv_pes = n_pes;
                  rv_cycles = r.Interp.cycles;
                  rv_norm =
                    float_of_int r.Interp.cycles
                    /. float_of_int base.Interp.cycles;
                  rv_ok = ok;
                  rv_stats = r.Interp.stats;
                })
              rival_modes)
          units
      in
      List.concat groups)

let rivals_table rows =
  let n_pes = match rows with r :: _ -> r.rv_pes | [] -> 0 in
  {
    title =
      Printf.sprintf
        "Hardware-coherence rivals (%d PEs): execution time normalized to \
         BASE, lower is better ('!' marks a failed numeric verification)"
        n_pes;
    headers =
      [
        "workload"; "machine"; "mode"; "cycles"; "norm"; "invalidations";
        "upgrades"; "dir msgs"; "bus conflicts"; "link conflicts";
      ];
    trows =
      List.map
        (fun r ->
          [
            r.rv_workload;
            r.rv_machine;
            r.rv_mode;
            string_of_int r.rv_cycles;
            Report.fx r.rv_norm ^ (if r.rv_ok then "" else "!");
            string_of_int r.rv_stats.Stats.invalidations;
            string_of_int r.rv_stats.Stats.upgrades;
            string_of_int r.rv_stats.Stats.dir_msgs;
            string_of_int r.rv_stats.Stats.bus_conflicts;
            string_of_int r.rv_stats.Stats.link_conflicts;
          ])
        rows;
  }

let rivals ?n_pes workloads ppf =
  print_tbl ppf (rivals_table (rivals_rows ?n_pes workloads))

let ablation_target ?n_pes workloads ppf =
  print_tbl ppf (ablation_target_table ?n_pes workloads)

let ablation_technique ?n_pes workloads ppf =
  print_tbl ppf (ablation_technique_table ?n_pes workloads)

let ablation_coherence ?n_pes workloads ppf =
  print_tbl ppf (ablation_coherence_table ?n_pes workloads)

let ablation_prefetch_clean ?n_pes workloads ppf =
  print_tbl ppf (ablation_prefetch_clean_table ?n_pes workloads)

let ablation_vpg_levels ?n_pes workloads ppf =
  print_tbl ppf (ablation_vpg_levels_table ?n_pes workloads)

let ablation_topology ?n_pes workloads ppf =
  print_tbl ppf (ablation_topology_table ?n_pes workloads)

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)
(* ------------------------------------------------------------------ *)

let map_point_rows ?jobs points f =
  Pool.run ?jobs
    ~label:(fun i -> string_of_int (List.nth points i))
    (fun _ p -> f p)
    points

let sweep_with_cfg (w : Workload.t) cfg =
  let compiled = Pipeline.compile cfg w.Workload.program in
  let ccdp =
    (Interp.run cfg compiled.Pipeline.program ~plan:compiled.Pipeline.plan
       ~mode:Memsys.Ccdp ())
      .Interp.cycles
  in
  let base =
    (Interp.run cfg compiled.Pipeline.program
       ~plan:(Ccdp_analysis.Annot.empty ()) ~mode:Memsys.Base ())
      .Interp.cycles
  in
  (base, ccdp)

let sweep_cache_table ?(n_pes = 16) ?(points = [ 512; 1024; 2048; 4096; 8192 ])
    ?jobs (w : Workload.t) =
  let rows =
    map_point_rows ?jobs points (fun cache_words ->
        let cfg = { (Config.t3d ~n_pes) with Config.cache_words } in
        let run mode =
          match mode with
          | Memsys.Ccdp ->
              let c = Pipeline.compile cfg w.Workload.program in
              (Interp.run cfg c.Pipeline.program ~plan:c.Pipeline.plan ~mode ())
                .Interp.cycles
          | _ ->
              (Interp.run cfg
                 (Ccdp_ir.Program.inline w.Workload.program)
                 ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ())
                .Interp.cycles
        in
        [
          string_of_int cache_words;
          string_of_int (run Memsys.Invalidate);
          string_of_int (run Memsys.Hscd);
          string_of_int (run Memsys.Ccdp);
        ])
  in
  {
    title =
      Printf.sprintf "Sweep: cache capacity, %s at %d PEs (cycles)"
        w.Workload.name n_pes;
    headers = [ "cache (words)"; "INV"; "HSCD"; "CCDP" ];
    trows = rows;
  }

let sweep_remote_table ?(n_pes = 16) ?(points = [ 30; 60; 90; 150; 300; 600 ])
    ?jobs (w : Workload.t) =
  let rows =
    map_point_rows ?jobs points (fun remote ->
        let cfg = { (Config.t3d ~n_pes) with Config.remote } in
        let base, ccdp = sweep_with_cfg w cfg in
        [
          string_of_int remote;
          string_of_int base;
          string_of_int ccdp;
          Report.fpct (100. *. float_of_int (base - ccdp) /. float_of_int base);
        ])
  in
  {
    title =
      Printf.sprintf "Sweep: remote latency, %s at %d PEs" w.Workload.name
        n_pes;
    headers = [ "remote (cyc)"; "BASE"; "CCDP"; "improvement" ];
    trows = rows;
  }

let sweep_queue_table ?(n_pes = 16) ?(points = [ 4; 8; 16; 32; 64 ]) ?jobs
    (w : Workload.t) =
  let rows =
    map_point_rows ?jobs points (fun q ->
        let cfg =
          { (Config.t3d ~n_pes) with Config.prefetch_queue_words = q }
        in
        let compiled = Pipeline.compile cfg w.Workload.program in
        let r =
          Interp.run cfg compiled.Pipeline.program ~plan:compiled.Pipeline.plan
            ~mode:Memsys.Ccdp ()
        in
        [
          string_of_int q;
          string_of_int r.Interp.cycles;
          string_of_int r.Interp.stats.Stats.pf_dropped;
          string_of_int r.Interp.stats.Stats.pf_late;
        ])
  in
  {
    title =
      Printf.sprintf "Sweep: prefetch queue capacity, %s at %d PEs"
        w.Workload.name n_pes;
    headers = [ "queue (words)"; "CCDP cycles"; "dropped"; "late" ];
    trows = rows;
  }

let sweep_cache ?n_pes ?points w ppf =
  print_tbl ppf (sweep_cache_table ?n_pes ?points w)

let sweep_remote ?n_pes ?points w ppf =
  print_tbl ppf (sweep_remote_table ?n_pes ?points w)

let sweep_queue ?n_pes ?points w ppf =
  print_tbl ppf (sweep_queue_table ?n_pes ?points w)
