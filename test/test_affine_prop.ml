(* Property-based tests of the IR algebra the analyses lean on: affine
   expression arithmetic against a naive evaluator, Section set operations
   against brute-force enumeration, and Iterspace range reasoning against
   direct loop execution. Failures here would silently corrupt every
   downstream analysis, so the properties are checked on random inputs
   rather than hand-picked ones. *)

open Ccdp_ir
open Ccdp_test_support.Tutil

let vars = [ "i"; "j"; "k"; "n" ]

(* ---- affine expressions ------------------------------------------- *)

(* (constant, terms, environment) with every variable bound *)
let affine_gen =
  QCheck.Gen.(
    let term = pair (oneofl vars) (int_range (-9) 9) in
    triple (int_range (-50) 50) (list_size (int_range 0 6) term)
      (flatten_l (List.map (fun v -> map (fun x -> (v, x)) (int_range (-20) 20)) vars)))

let affine_arb =
  QCheck.make
    ~print:(fun (c, ts, env) ->
      Printf.sprintf "%d + %s under [%s]" c
        (String.concat " + "
           (List.map (fun (v, k) -> Printf.sprintf "%d*%s" k v) ts))
        (String.concat "; "
           (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) env)))
    affine_gen

let naive_eval c ts env =
  List.fold_left (fun acc (v, k) -> acc + (k * List.assoc v env)) c ts

let lookup env v = List.assoc v env

let affine_suite =
  [
    qcheck ~count:500 "of_terms/eval agrees with the naive sum" affine_arb
      (fun (c, ts, env) ->
        Affine.eval (Affine.of_terms c ts) (lookup env) = naive_eval c ts env);
    qcheck ~count:500 "add is pointwise" affine_arb (fun (c, ts, env) ->
        let a = Affine.of_terms c ts in
        let b = Affine.of_terms (-c) (List.map (fun (v, k) -> (v, k + 1)) ts) in
        Affine.eval (Affine.add a b) (lookup env)
        = Affine.eval a (lookup env) + Affine.eval b (lookup env));
    qcheck ~count:500 "sub then add round-trips" affine_arb
      (fun (c, ts, env) ->
        let a = Affine.of_terms c ts in
        let b = Affine.of_terms 7 [ ("i", 3); ("j", -2) ] in
        Affine.eval (Affine.add (Affine.sub a b) b) (lookup env)
        = Affine.eval a (lookup env));
    qcheck ~count:500 "scale multiplies the value" affine_arb
      (fun (c, ts, env) ->
        let a = Affine.of_terms c ts in
        Affine.eval (Affine.scale (-3) a) (lookup env)
        = -3 * Affine.eval a (lookup env));
    qcheck ~count:500 "subst = eval with the substituted value" affine_arb
      (fun (c, ts, env) ->
        let a = Affine.of_terms c ts in
        let by = Affine.of_terms 2 [ ("j", 5) ] in
        Affine.eval (Affine.subst a "i" by) (lookup env)
        = Affine.eval a (fun v ->
              if v = "i" then Affine.eval by (lookup env) else lookup env v));
    qcheck ~count:500 "uniformly_generated iff constant offset" affine_arb
      (fun (c, ts, env) ->
        ignore env;
        let a = Affine.of_terms c ts in
        let b = Affine.of_terms (c + 13) ts in
        Affine.uniformly_generated a b
        && Affine.offset_between a b = Some 13);
  ]

(* ---- sections ------------------------------------------------------ *)

(* random 2-D progression sections over a small universe *)
let section_gen =
  QCheck.Gen.(
    let dim =
      int_range 0 6 >>= fun lo ->
      int_range lo (lo + 12) >>= fun hi ->
      int_range 1 4 >|= fun step -> Section.dim ~lo ~hi ~step
    in
    map2 (fun a b -> Section.of_dims [ a; b ]) dim dim)

let section_arb = QCheck.make ~print:Section.to_string section_gen

let pair_arb =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "%s vs %s" (Section.to_string a) (Section.to_string b))
    QCheck.Gen.(pair section_gen section_gen)

let points s = List.map (fun (x, y) -> [| x; y |]) (enum_section2 s)

let section_suite =
  [
    qcheck ~count:300 "size equals enumeration length" section_arb (fun s ->
        Section.size s = Some (List.length (enum_section2 s)));
    qcheck ~count:300 "mem agrees with enumeration" section_arb (fun s ->
        List.for_all (Section.mem s) (points s));
    qcheck ~count:300 "inter over-approximates the true intersection"
      pair_arb (fun (a, b) ->
        let i = Section.inter a b in
        List.for_all
          (fun p -> (not (Section.mem b p)) || Section.mem i p)
          (points a));
    qcheck ~count:300 "inter is monotone: contained in both hulls" pair_arb
      (fun (a, b) ->
        match Section.inter a b with
        | Section.Empty -> true
        | i ->
            List.for_all
              (fun p -> Section.mem (Section.hull a b) p)
              (points i));
    qcheck ~count:300 "overlaps is sound (never misses a shared point)"
      pair_arb (fun (a, b) ->
        let shared = List.exists (Section.mem b) (points a) in
        (not shared) || Section.overlaps a b);
    qcheck ~count:300 "contains is sound w.r.t. enumeration" pair_arb
      (fun (a, b) ->
        (not (Section.contains a b))
        || List.for_all (Section.mem a) (points b));
    qcheck ~count:300 "hull covers both operands" pair_arb (fun (a, b) ->
        let h = Section.hull a b in
        List.for_all (Section.mem h) (points a)
        && List.for_all (Section.mem h) (points b));
    qcheck ~count:300 "inter with self is identity on membership"
      section_arb (fun s ->
        let i = Section.inter s s in
        List.for_all (Section.mem i) (points s));
  ]

(* ---- iteration spaces ---------------------------------------------- *)

let mk_loop lo hi =
  {
    Stmt.loop_id = 0;
    var = "i";
    lo = Bound.of_int lo;
    hi = Bound.of_int hi;
    step = 1;
    kind = Stmt.Serial;
    body = [];
    loc = Loc.Synthetic;
  }

let range_arb =
  QCheck.make
    ~print:(fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi)
    QCheck.Gen.(
      int_range (-10) 20 >>= fun lo ->
      int_range lo (lo + 30) >|= fun hi -> (lo, hi))

let iterspace_suite =
  [
    qcheck ~count:300 "trip_count counts actual iterations" range_arb
      (fun (lo, hi) ->
        let env = Ccdp_analysis.Iterspace.of_loops ~params:[] [] in
        let count = ref 0 in
        for _ = lo to hi do
          incr count
        done;
        Ccdp_analysis.Iterspace.trip_count (mk_loop lo hi) env = Some !count);
    qcheck ~count:300 "bound_range brackets an affine bound in the loop env"
      range_arb (fun (lo, hi) ->
        let outer = mk_loop lo hi in
        let env = Ccdp_analysis.Iterspace.of_loops ~params:[] [ outer ] in
        (* i + 2 over i in lo..hi spans lo+2 .. hi+2 *)
        let b = Bound.known (Affine.add (Affine.var "i") (Affine.const 2)) in
        Ccdp_analysis.Iterspace.bound_range b env = Some (lo + 2, hi + 2));
    qcheck ~count:300 "volume of a loop section matches the trip count"
      range_arb (fun (lo, hi) ->
        let outer = mk_loop lo hi in
        let env = Ccdp_analysis.Iterspace.of_loops ~params:[] [ outer ] in
        match Section.of_subscripts [| Affine.var "i" |] env with
        | Section.Dims _ as s ->
            Section.size s = Some (hi - lo + 1)
        | _ -> false);
  ]

let () =
  Alcotest.run "affine-prop"
    [
      ("affine", affine_suite);
      ("section", section_suite);
      ("iterspace", iterspace_suite);
    ]
