open Ccdp_ir
open Ccdp_machine

type mode = Seq | Base | Ccdp | Invalidate | Incoherent | Hscd

let mode_name = function
  | Seq -> "SEQ"
  | Base -> "BASE"
  | Ccdp -> "CCDP"
  | Invalidate -> "INV"
  | Incoherent -> "INC"
  | Hscd -> "HSCD"

(* HSCD write-version state of one array: [settled] is the last completed
   epoch tick that contained any write; [writers] is a bitmask of the PEs
   that have written during the current epoch (all-ones when a PE id
   exceeds the mask width). A reader whose own PE is the only current
   writer may trust same-epoch fills: nobody else changed memory. *)
type version = { mutable settled : int; mutable writers : int }

(* Dynamic staleness oracle: memory carries a per-word version stamp
   (monotonic write counter) and the epoch in which the stamp was produced;
   cache lines capture the stamps of their words at fill/update time. A
   cache hit whose captured version predates a write completed before the
   current epoch has observed a stale copy — a concrete unsoundness witness
   for the stale-reference analysis, independent of whether the numeric
   value happens to coincide. *)
type violation = {
  v_ref : int;  (** offending reference id *)
  v_pe : int;
  v_array : string;
  v_index : int array;
  v_addr : int;
  v_cached_version : int;
  v_mem_version : int;
  v_write_epoch : int;  (** epoch that produced the missed write *)
  v_read_epoch : int;  (** epoch in which the stale hit happened *)
}

type oracle = {
  wver : int array;  (** per-word last-write version *)
  wepoch : int array;  (** epoch tick of the last write; -1 = init *)
  mutable next_ver : int;
  mutable checked : int;
  mutable n_violations : int;
  mutable violations : violation list;  (** first few witnesses, oldest first *)
}

let max_kept_violations = 16

type pe_ctx = {
  pe : Pe.t;
  vget : (int, int) Hashtbl.t;  (** line -> ready cycle *)
  mutable vget_order : int list;  (** staged lines, oldest first *)
  mutable vget_words : int;
  fresh : (int, unit) Hashtbl.t;  (** lines filled since the last barrier *)
  mutable epoch_start : int;
}

type t = {
  cfg : Config.t;
  md : mode;
  amap : Addr_map.t;
  mem : float array;
  mach : Machine.t;
  ctxs : pe_ctx array;
  decls : (string, Array_decl.t) Hashtbl.t;
  pl : Ccdp_analysis.Annot.plan;
  net : Torus.t option;  (** distance model when [cfg.torus] *)
  mutable epoch_tick : int;  (** epoch-execution counter (version clock) *)
  versions : (string, version) Hashtbl.t;
      (** HSCD: per-array write-version state *)
  observed_stale : (int, unit) Hashtbl.t;
      (** reference ids that returned a value differing from memory
          (photographed in INCOHERENT mode; ground truth for validating the
          stale-reference analysis) *)
  ora : oracle option;
}

let create cfg ?(oracle = false) (p : Program.t) ~plan md =
  let mach = Machine.create cfg in
  let amap =
    Addr_map.make p ~n_pes:cfg.Config.n_pes ~line_words:cfg.Config.line_words
      ~cache_lines:(Config.lines cfg)
      ()
  in
  let decls = Hashtbl.create 16 in
  List.iter (fun (a : Array_decl.t) -> Hashtbl.replace decls a.name a) p.Program.arrays;
  {
    cfg;
    md;
    amap;
    mem = Array.make (Addr_map.total_words amap) 0.0;
    mach;
    ctxs =
      Array.init cfg.Config.n_pes (fun i ->
          {
            pe = Machine.pe mach i;
            vget = Hashtbl.create 64;
            vget_order = [];
            vget_words = 0;
            fresh = Hashtbl.create 256;
            epoch_start = 0;
          });
    decls;
    pl = plan;
    net = (if cfg.Config.torus then Some (Torus.of_pes cfg.Config.n_pes) else None);
    epoch_tick = 0;
    versions = Hashtbl.create 16;
    observed_stale = Hashtbl.create 16;
    ora =
      (if oracle then
         let words = Addr_map.total_words amap in
         Some
           {
             wver = Array.make words 0;
             wepoch = Array.make words (-1);
             next_ver = 0;
             checked = 0;
             n_violations = 0;
             violations = [];
           }
       else None);
  }

let cfg t = t.cfg
let mode t = t.md
let map t = t.amap
let machine t = t.mach
let plan t = t.pl
let decl t name = Hashtbl.find t.decls name

let set t name idx v =
  List.iter
    (fun a ->
      t.mem.(a) <- v;
      match t.ora with
      | Some o ->
          (* untimed initialization: versioned, but settled before epoch 0 *)
          o.next_ver <- o.next_ver + 1;
          o.wver.(a) <- o.next_ver;
          o.wepoch.(a) <- -1
      | None -> ())
    (Addr_map.all_copies t.amap name idx)

let get t name idx = t.mem.(Addr_map.canonical t.amap name idx)
let charge t ~pe c =
  let ctx = t.ctxs.(pe) in
  ctx.pe.Pe.stats.Stats.flop_cycles <- ctx.pe.Pe.stats.Stats.flop_cycles + c;
  Pe.advance ctx.pe c
let clock t ~pe = t.ctxs.(pe).pe.Pe.clock

(* ------------------------------------------------------------------ *)
(* Internals                                                           *)
(* ------------------------------------------------------------------ *)

let net_dist t ~pe owner =
  match t.net with
  | None -> 0
  | Some torus -> t.cfg.Config.hop * Torus.hops torus pe owner

let latency_of t ~pe = function
  | `Local -> t.cfg.Config.local
  | `Remote owner -> t.cfg.Config.remote + net_dist t ~pe owner

(* Latency of a read that does not allocate in the cache: local reads
   stream through the T3D read-ahead buffer. *)
let uncached_latency_of t ~pe = function
  | `Local -> t.cfg.Config.uncached_local
  | `Remote owner -> t.cfg.Config.remote + net_dist t ~pe owner

let store_cost t = function
  | `Local -> t.cfg.Config.store_local
  | `Remote _ -> t.cfg.Config.store_remote

(* Annex set-up cost of addressing a target PE (free when resident). *)
let annex_cost t ctx = function
  | `Local -> 0
  | `Remote owner ->
      if Dtb_annex.touch ctx.pe.Pe.annex owner then begin
        ctx.pe.Pe.stats.Stats.annex_hits <- ctx.pe.Pe.stats.Stats.annex_hits + 1;
        0
      end
      else begin
        ctx.pe.Pe.stats.Stats.annex_misses <- ctx.pe.Pe.stats.Stats.annex_misses + 1;
        t.cfg.Config.annex_setup
      end

let line_payload t line =
  let lw = t.cfg.Config.line_words in
  Array.sub t.mem (line * lw) lw

let fill t ctx line =
  let vers =
    match t.ora with
    | None -> None
    | Some o ->
        let lw = t.cfg.Config.line_words in
        Some (Array.sub o.wver (line * lw) lw)
  in
  ignore
    (Cache.fill ctx.pe.Pe.cache ~tick:t.epoch_tick ?vers ~line
       (line_payload t line));
  Hashtbl.replace ctx.fresh line ()

let record_arrival ctx ~stall =
  let s = ctx.pe.Pe.stats in
  if stall > 0 then begin
    s.Stats.pf_late <- s.Stats.pf_late + 1;
    s.Stats.pf_late_cycles <- s.Stats.pf_late_cycles + stall;
    s.Stats.stall_cycles <- s.Stats.stall_cycles + stall
  end
  else s.Stats.pf_on_time <- s.Stats.pf_on_time + 1

(* Oracle assertion at a cache hit: the captured word version must be no
   older than the last write settled before the current epoch. Writes of
   the current epoch are exempt — under the epoch model's race-freedom a
   same-epoch writer of a read location can only be the reading PE itself,
   whose write-through patched the cached copy (and its version). *)
let oracle_check t ctx vref addr =
  match (t.ora, vref) with
  | Some o, Some ((r : Reference.t), idx) ->
      o.checked <- o.checked + 1;
      let cv =
        match Cache.word_version ctx.pe.Pe.cache ~addr with
        | Some v -> v
        | None -> 0
      in
      if o.wver.(addr) > cv && o.wepoch.(addr) < t.epoch_tick then begin
        o.n_violations <- o.n_violations + 1;
        if List.length o.violations < max_kept_violations then
          o.violations <-
            o.violations
            @ [
                {
                  v_ref = r.Reference.id;
                  v_pe = ctx.pe.Pe.id;
                  v_array = r.Reference.array_name;
                  v_index = Array.copy idx;
                  v_addr = addr;
                  v_cached_version = cv;
                  v_mem_version = o.wver.(addr);
                  v_write_epoch = o.wepoch.(addr);
                  v_read_epoch = t.epoch_tick;
                };
              ]
      end
  | _ -> ()

(* The ordinary cached-read protocol: consume a pending vector-get or queue
   entry if one exists, then the cache, then demand-fetch. [fresh_only]
   restricts cache hits to lines filled since the last barrier (used for
   leading references, whose cached copy is only trustworthy when this
   epoch's prefetch machinery put it there). [vref] identifies the dynamic
   reference for oracle reporting (tracked shared reads only). *)
let cached_read ?(fresh_only = false) ?vref t ctx addr target =
  let self = ctx.pe.Pe.id in
  let lw = t.cfg.Config.line_words in
  let line = addr / lw in
  match Hashtbl.find_opt ctx.vget line with
  | Some ready ->
      let stall = max 0 (ready - ctx.pe.Pe.clock) in
      Hashtbl.remove ctx.vget line;
      ctx.vget_order <- List.filter (fun l -> l <> line) ctx.vget_order;
      ctx.vget_words <- ctx.vget_words - lw;
      record_arrival ctx ~stall;
      Pe.advance ctx.pe (stall + t.cfg.Config.hit);
      fill t ctx line;
      t.mem.(addr)
  | None -> (
      match Prefetch_queue.find ctx.pe.Pe.queue ~line with
      | Some ready ->
          let stall = max 0 (ready - ctx.pe.Pe.clock) in
          Prefetch_queue.remove ctx.pe.Pe.queue ~line;
          record_arrival ctx ~stall;
          Pe.advance ctx.pe (stall + t.cfg.Config.pf_extract);
          fill t ctx line;
          t.mem.(addr)
      | None -> (
          let cache_hit =
            if fresh_only && not (Hashtbl.mem ctx.fresh line) then None
            else Cache.read ctx.pe.Pe.cache ~addr
          in
          match cache_hit with
          | Some v ->
              oracle_check t ctx vref addr;
              ctx.pe.Pe.stats.Stats.hits <- ctx.pe.Pe.stats.Stats.hits + 1;
              Pe.advance ctx.pe t.cfg.Config.hit;
              v
          | None ->
              (let s = ctx.pe.Pe.stats in
               match target with
               | `Local -> s.Stats.miss_local <- s.Stats.miss_local + 1
               | `Remote _ -> s.Stats.miss_remote <- s.Stats.miss_remote + 1);
              Pe.advance ctx.pe
                (annex_cost t ctx target + latency_of t ~pe:self target);
              fill t ctx line;
              t.mem.(addr)))

let uncached_read t ctx addr target =
  (let s = ctx.pe.Pe.stats in
   match target with
   | `Local -> s.Stats.uncached_local <- s.Stats.uncached_local + 1
   | `Remote _ -> s.Stats.uncached_remote <- s.Stats.uncached_remote + 1);
  Pe.advance ctx.pe
    (annex_cost t ctx target + uncached_latency_of t ~pe:ctx.pe.Pe.id target);
  t.mem.(addr)

let bypass_read t ctx addr target =
  ctx.pe.Pe.stats.Stats.bypass_reads <- ctx.pe.Pe.stats.Stats.bypass_reads + 1;
  Pe.advance ctx.pe
    (annex_cost t ctx target + uncached_latency_of t ~pe:ctx.pe.Pe.id target);
  t.mem.(addr)

(* A moved-back prefetch: the issue happened [back] cycles ago (clamped to
   the epoch start), so the reader only stalls for the residual latency. *)
let moved_back_read t ctx addr target ~back =
  let s = ctx.pe.Pe.stats in
  s.Stats.pf_issued <- s.Stats.pf_issued + 1;
  let lw = t.cfg.Config.line_words in
  let line = addr / lw in
  let issue_at = max ctx.epoch_start (ctx.pe.Pe.clock - back) in
  let ready = issue_at + latency_of t ~pe:ctx.pe.Pe.id target in
  let stall = max 0 (ready - ctx.pe.Pe.clock) in
  record_arrival ctx ~stall;
  Pe.advance ctx.pe
    (annex_cost t ctx target + t.cfg.Config.pf_issue + t.cfg.Config.pf_extract
   + stall);
  Cache.invalidate_line ctx.pe.Pe.cache ~line;
  fill t ctx line;
  t.mem.(addr)

(* ------------------------------------------------------------------ *)
(* Public protocol                                                     *)
(* ------------------------------------------------------------------ *)

(* a Lead whose stale verdict is Clean is a pure latency-hiding prefetch
   (the paper's future-work extension): any cached copy of its data is
   valid, so staging may skip cached lines and reads may hit non-fresh
   lines *)
let clean_lead t id =
  Ccdp_analysis.Stale.verdict t.pl.Ccdp_analysis.Annot.stale id
  = Ccdp_analysis.Stale.Clean

let tracked_shared t name =
  let d = decl t name in
  d.Array_decl.shared && d.Array_decl.dist <> Dist.Replicated

let writer_bit pe = if pe < 62 then 1 lsl pe else -1

(* HSCD (hardware-supported compiler-directed, after Choi-Yew's version
   schemes): every cache line carries its fill version, every array a
   write-version register. A hit whose line does not post-date the last
   write by another PE self-invalidates and refetches — coherence in
   hardware checks, no prefetching, no whole-cache flushes. Strictness
   matters: a line filled in the same epoch as another PE's write to it may
   have captured pre-write words (false sharing at epoch granularity); own
   writes are exempt, since memory was not changed by anyone else. *)
let hscd_read ?vref t ctx name addr target =
  let lw = t.cfg.Config.line_words in
  let line = addr / lw in
  let effective =
    match Hashtbl.find_opt t.versions name with
    | None -> -1
    | Some v ->
        if v.writers = 0 || v.writers = writer_bit ctx.pe.Pe.id then v.settled
        else t.epoch_tick
  in
  (match Cache.fill_tick ctx.pe.Pe.cache ~line with
  | Some ft when ft <= effective ->
      Cache.invalidate_line ctx.pe.Pe.cache ~line;
      ctx.pe.Pe.stats.Stats.invalidations <-
        ctx.pe.Pe.stats.Stats.invalidations + 1
  | Some _ | None -> ());
  cached_read ?vref t ctx addr target

let read t ~pe (r : Reference.t) ~idx =
  let ctx = t.ctxs.(pe) in
  ctx.pe.Pe.stats.Stats.reads <- ctx.pe.Pe.stats.Stats.reads + 1;
  let addr, target = Addr_map.resolve t.amap ~pe r.array_name idx in
  if not (tracked_shared t r.array_name) then
    (* private / replicated data: cached and local in every mode *)
    cached_read t ctx addr `Local
  else
    let vref = (r, idx) in
    if t.md = Incoherent then begin
      (* ground-truth staleness detection: an incoherent read that returns a
         value other than memory's has observed an actually-stale copy *)
      let v = cached_read ~vref t ctx addr target in
      if v <> t.mem.(addr) then Hashtbl.replace t.observed_stale r.id ();
      v
    end
    else
      match t.md with
      | Seq | Invalidate | Incoherent -> cached_read ~vref t ctx addr target
      | Hscd -> hscd_read ~vref t ctx r.array_name addr target
      | Base -> uncached_read t ctx addr target
      | Ccdp -> (
          let open Ccdp_analysis in
          match Annot.cls_of t.pl r.id with
          | Annot.Normal -> cached_read ~vref t ctx addr target
          | Annot.Covered _ ->
              (* a stale covered read may only hit lines its leader staged
                 this epoch: at loop boundaries the covered span can reach one
                 element past the leader's clamped range, and when chunk and
                 line sizes misalign that element lands in a line the leader
                 never touched — a leftover stale copy. Fresh-only turns that
                 corner into a demand miss of current memory. Clean covers
                 (latency-hiding groups) may trust any copy. *)
              cached_read
                ~fresh_only:(not (clean_lead t r.id))
                ~vref t ctx addr target
          | Annot.Bypass -> bypass_read t ctx addr target
          | Annot.Lead -> (
              match Annot.op_of t.pl r.id with
              | Some (Annot.Back { cycles; _ }) ->
                  if clean_lead t r.id then cached_read ~vref t ctx addr target
                  else moved_back_read t ctx addr target ~back:cycles
              | Some (Annot.Pipelined _) | Some (Annot.Vector _)
                when clean_lead t r.id ->
                  cached_read ~vref t ctx addr target
              | Some (Annot.Pipelined _) | Some (Annot.Vector _) -> (
                  (* the prefetch machinery must have staged the line: pending
                     entries are consumed by the normal path; a fresh cached
                     line is a earlier consume; anything else means the issue
                     was dropped -> bypass fetch *)
                  let lw = t.cfg.Config.line_words in
                  let line = addr / lw in
                  if
                    Hashtbl.mem ctx.vget line
                    || Prefetch_queue.find ctx.pe.Pe.queue ~line <> None
                    || Hashtbl.mem ctx.fresh line
                  then cached_read ~fresh_only:true ~vref t ctx addr target
                  else bypass_read t ctx addr target)
              | None -> bypass_read t ctx addr target))

let write t ~pe (r : Reference.t) ~idx v =
  let ctx = t.ctxs.(pe) in
  ctx.pe.Pe.stats.Stats.writes <- ctx.pe.Pe.stats.Stats.writes + 1;
  let addr, target = Addr_map.resolve t.amap ~pe r.array_name idx in
  t.mem.(addr) <- v;
  let ver =
    match t.ora with
    | None -> None
    | Some o ->
        o.next_ver <- o.next_ver + 1;
        o.wver.(addr) <- o.next_ver;
        o.wepoch.(addr) <- t.epoch_tick;
        Some o.next_ver
  in
  (if t.md = Hscd && tracked_shared t r.array_name then
     match Hashtbl.find_opt t.versions r.array_name with
     | Some v -> v.writers <- v.writers lor writer_bit pe
     | None ->
         Hashtbl.replace t.versions r.array_name
           { settled = -1; writers = writer_bit pe });
  let caches_it =
    (not (tracked_shared t r.array_name))
    ||
    match t.md with
    | Seq | Ccdp | Invalidate | Incoherent | Hscd -> true
    | Base -> false
  in
  if caches_it then Cache.update_if_present ctx.pe.Pe.cache ?ver ~addr v;
  Pe.advance ctx.pe
    (if tracked_shared t r.array_name then store_cost t target
     else t.cfg.Config.store_local)

let issue_line_prefetch ?(skip_cached = false) t ~pe name ~idx =
  let ctx = t.ctxs.(pe) in
  let addr, target = Addr_map.resolve t.amap ~pe name idx in
  let lw = t.cfg.Config.line_words in
  let line = addr / lw in
  let already =
    Hashtbl.mem ctx.vget line
    || Prefetch_queue.find ctx.pe.Pe.queue ~line <> None
    || ((skip_cached || Hashtbl.mem ctx.fresh line)
       && Cache.probe_line ctx.pe.Pe.cache ~line)
  in
  (* the prefetch instruction executes either way; the line transfer and
     queue slot are only committed when the line is not already staged *)
  Pe.advance ctx.pe t.cfg.Config.pf_issue;
  if not already then begin
    Pe.advance ctx.pe (annex_cost t ctx target);
    (* invalidate before issuing (paper Section 3): the stale copy must not
       be readable while the prefetch is in flight *)
    Cache.invalidate_line ctx.pe.Pe.cache ~line;
    Hashtbl.remove ctx.fresh line;
    let ready = ctx.pe.Pe.clock + latency_of t ~pe:ctx.pe.Pe.id target in
    if Prefetch_queue.try_insert ctx.pe.Pe.queue ~line ~words:lw ~ready then
      ctx.pe.Pe.stats.Stats.pf_issued <- ctx.pe.Pe.stats.Stats.pf_issued + 1
    else ctx.pe.Pe.stats.Stats.pf_dropped <- ctx.pe.Pe.stats.Stats.pf_dropped + 1
  end

let line_of t ~pe name ~idx =
  let addr, _ = Addr_map.resolve t.amap ~pe name idx in
  addr / t.cfg.Config.line_words

let vget_issue ?(skip_cached = false) t ~pe name idxs =
  let ctx = t.ctxs.(pe) in
  let lw = t.cfg.Config.line_words in
  let lines = Hashtbl.create 64 in
  let ordered = ref [] in
  let first_target = ref `Local in
  List.iter
    (fun idx ->
      let addr, target = Addr_map.resolve t.amap ~pe name idx in
      (match (target, !first_target) with
      | (`Remote _ as r), `Local -> first_target := r
      | _ -> ());
      let line = addr / lw in
      if not (Hashtbl.mem lines line) then begin
        Hashtbl.replace lines line ();
        (* skip lines this epoch's machinery already staged or fetched *)
        if
          not
            (((skip_cached || Hashtbl.mem ctx.fresh line)
             && Cache.probe_line ctx.pe.Pe.cache ~line)
            || Hashtbl.mem ctx.vget line)
        then ordered := line :: !ordered
      end)
    idxs;
  let ordered = List.rev !ordered in
  let n = List.length ordered in
  if Hashtbl.length lines > 0 then begin
    (* the block-transfer call is issued whenever the operation executes —
       a redundant vector prefetch still pays its start-up and translation
       overhead, even if every line turns out to be staged already *)
    let s = ctx.pe.Pe.stats in
    s.Stats.pf_vector <- s.Stats.pf_vector + 1;
    s.Stats.pf_vector_words <- s.Stats.pf_vector_words + (n * lw);
    Pe.advance ctx.pe (annex_cost t ctx !first_target + t.cfg.Config.vget_startup);
    List.iteri
      (fun k line ->
        Cache.invalidate_line ctx.pe.Pe.cache ~line;
        Hashtbl.remove ctx.fresh line;
        (* the staging buffer holds at most a cache's worth of in-flight
           vector data: staging beyond that displaces the oldest unconsumed
           lines — the eviction hazard that motivates the paper's one-level
           pulling restriction *)
        while
          ctx.vget_words + lw > t.cfg.Config.cache_words
          && ctx.vget_order <> []
        do
          match ctx.vget_order with
          | oldest :: rest ->
              ctx.vget_order <- rest;
              Hashtbl.remove ctx.vget oldest;
              ctx.vget_words <- ctx.vget_words - lw;
              s.Stats.pf_evicted <- s.Stats.pf_evicted + 1
          | [] -> ()
        done;
        let ready =
          ctx.pe.Pe.clock + ((k + 1) * lw * t.cfg.Config.vget_per_word)
        in
        if not (Hashtbl.mem ctx.vget line) then begin
          ctx.vget_order <- ctx.vget_order @ [ line ];
          ctx.vget_words <- ctx.vget_words + lw
        end;
        Hashtbl.replace ctx.vget line ready)
      ordered
  end

let epoch_boundary t =
  Array.iter
    (fun ctx ->
      let leftovers = Hashtbl.length ctx.vget in
      ctx.pe.Pe.stats.Stats.pf_unused <-
        ctx.pe.Pe.stats.Stats.pf_unused + leftovers;
      Hashtbl.reset ctx.vget;
      ctx.vget_order <- [];
      ctx.vget_words <- 0;
      Hashtbl.reset ctx.fresh)
    t.ctxs;
  Hashtbl.iter
    (fun _ v ->
      if v.writers <> 0 then begin
        v.settled <- t.epoch_tick;
        v.writers <- 0
      end)
    t.versions;
  t.epoch_tick <- t.epoch_tick + 1;
  (match t.md with
  | Seq -> ()
  | Base | Ccdp | Incoherent | Hscd -> Machine.barrier t.mach
  | Invalidate ->
      Machine.barrier t.mach;
      Array.iter
        (fun ctx ->
          Cache.invalidate_all ctx.pe.Pe.cache;
          ctx.pe.Pe.stats.Stats.invalidations <-
            ctx.pe.Pe.stats.Stats.invalidations + 1)
        t.ctxs);
  Array.iter (fun ctx -> ctx.epoch_start <- ctx.pe.Pe.clock) t.ctxs

let time t = Machine.time t.mach
let total_stats t = Machine.total_stats t.mach

let oracle_enabled t = t.ora <> None
let oracle_checked t = match t.ora with Some o -> o.checked | None -> 0

let oracle_violation_count t =
  match t.ora with Some o -> o.n_violations | None -> 0

let oracle_violations t = match t.ora with Some o -> o.violations | None -> []

let pp_violation ppf v =
  Format.fprintf ppf
    "stale hit: ref %d on PE %d read %s(%s) [addr %d] in epoch %d; cached \
     version %d predates version %d written in epoch %d"
    v.v_ref v.v_pe v.v_array
    (String.concat "," (Array.to_list (Array.map string_of_int v.v_index)))
    v.v_addr v.v_read_epoch v.v_cached_version v.v_mem_version v.v_write_epoch

let observed_stale_ids t =
  Hashtbl.fold (fun id () acc -> id :: acc) t.observed_stale []
  |> List.sort compare

let stale_cached_words t =
  let lw = t.cfg.Config.line_words in
  let count = ref 0 in
  Array.iter
    (fun ctx ->
      for addr = 0 to Array.length t.mem - 1 do
        ignore lw;
        match Cache.peek ctx.pe.Pe.cache ~addr with
        | Some v when v <> t.mem.(addr) -> incr count
        | Some _ | None -> ()
      done)
    t.ctxs;
  !count
