(* Additional front-end coverage: idempotence of emit after a round trip,
   and the text-authored example workload. *)
open Ccdp_ir
open Ccdp_test_support.Tutil

let tests =
  [
    case "emit is a fixed point after one round trip" (fun () ->
        let w =
          Ccdp_workloads.Workload.find
            (Ccdp_workloads.Suite.all ~n:16 ~iters:1 ())
            "jacobi"
        in
        let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
        let c1 = Ccdp_core.Pipeline.compile cfg w.Ccdp_workloads.Workload.program in
        let t1 = Ccdp_core.Craft_emit.to_string c1 in
        let c2 = Ccdp_core.Pipeline.compile cfg (Craft_parse.program t1) in
        let t2 = Ccdp_core.Craft_emit.to_string c2 in
        let c3 = Ccdp_core.Pipeline.compile cfg (Craft_parse.program t2) in
        let t3 = Ccdp_core.Craft_emit.to_string c3 in
        Alcotest.(check string) "stable" t2 t3);
    case "the shipped heat2d.craft example parses, runs and verifies" (fun () ->
        let path =
          List.find Sys.file_exists
            [
              "../examples/heat2d.craft";
              "../../examples/heat2d.craft";
              "../../../examples/heat2d.craft";
              "examples/heat2d.craft";
            ]
        in
        let p = Craft_parse.file path in
        Alcotest.(check (list string)) "valid" [] (Program.validate p);
        let cfg = Ccdp_machine.Config.t3d ~n_pes:8 in
        let c = Ccdp_core.Pipeline.compile cfg p in
        (* the runtime-bounded cooling loop must have used SP *)
        let counts = Ccdp_analysis.Annot.count c.Ccdp_core.Pipeline.plan in
        check_true "pipelined" (counts.Ccdp_analysis.Annot.n_pipelined > 0);
        let r =
          Ccdp_runtime.Interp.run cfg c.Ccdp_core.Pipeline.program
            ~plan:c.Ccdp_core.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp ()
        in
        let v = Ccdp_runtime.Verify.against_sequential p ~init:(fun _ -> ()) r in
        check_true "verified" v.Ccdp_runtime.Verify.ok);
    case "integer literals in float context become constants" (fun () ->
        let src =
          "      PROGRAM X\n      REAL*8 A(4)\nCDIR$ SHARED A(:BLOCK)\n\
          \      DO I = 0, 3\n      A(i) = (4*2 + 1)\n      ENDDO\n      END\n"
        in
        let p = Craft_parse.program src in
        let cfg = Ccdp_machine.Config.t3d ~n_pes:2 in
        let r =
          Ccdp_runtime.Interp.run cfg (Program.inline p)
            ~plan:(Ccdp_analysis.Annot.empty ()) ~mode:Ccdp_runtime.Memsys.Seq ()
        in
        check_float "value" 9.0 (Ccdp_runtime.Memsys.get r.Ccdp_runtime.Interp.sys "A" [| 2 |]));
    case "negative parameter values parse" (fun () ->
        let src = "      PROGRAM X\n      PARAMETER (OFF = -3)\n      END\n" in
        check_int "off" (-3) (Program.param (Craft_parse.program src) "off"));
    case "1-D block distribution syntax" (fun () ->
        let src =
          "      PROGRAM X\n      REAL*8 A(8)\nCDIR$ SHARED A(:BLOCK)\n      END\n"
        in
        let p = Craft_parse.program src in
        let a = Program.find_array p "A" in
        check_true "block dim0" (Dist.distributed_dim a.Array_decl.dist = Some 0));
  ]

let () = Alcotest.run "craft-parse-more" [ ("front-end", tests) ]
