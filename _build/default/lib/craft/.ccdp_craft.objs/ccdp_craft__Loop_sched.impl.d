lib/craft/loop_sched.ml: Ccdp_ir List Stmt
