(** Shared array declarations.

    Every array in a program carries its extents, element width in 64-bit
    words (the T3D prefetch granule), its CRAFT distribution, and whether it
    is shared. Non-shared ([private_]) arrays are task-private and never
    participate in coherence. Arrays start at a cache-line boundary — the
    alignment assumption the paper's group-spatial analysis requires
    (Section 4.2, enforced there "by specifying a compiler option"). *)

type t = private {
  name : string;
  dims : int array;
      (** extent of each dimension; column-major (Fortran) linearization:
          dimension 0 is contiguous in memory *)
  elem_words : int;  (** element size in 64-bit words (1 for float64) *)
  dist : Dist.t;
  shared : bool;
}

val make :
  ?elem_words:int -> ?dist:Dist.t -> ?shared:bool -> string -> int array -> t

val rank : t -> int

(** Total elements. *)
val elems : t -> int

(** Total 64-bit words. *)
val words : t -> int

(** Column-major linear element index of a point.
    @raise Invalid_argument on rank mismatch or out-of-range index. *)
val linear_index : t -> int array -> int

(** Inverse of {!linear_index}. *)
val point_of_linear : t -> int -> int array

val pp : Format.formatter -> t -> unit
