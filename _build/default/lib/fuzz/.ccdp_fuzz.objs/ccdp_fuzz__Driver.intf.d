lib/fuzz/driver.mli: Ccdp_analysis Format Gen
