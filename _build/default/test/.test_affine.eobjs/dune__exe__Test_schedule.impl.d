test/test_schedule.ml: Affine Alcotest Annot Bound Builder Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_test_support Dist Hashtbl List Program Schedule Stmt
