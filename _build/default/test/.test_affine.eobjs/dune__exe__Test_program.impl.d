test/test_program.ml: Affine Alcotest Array Builder Ccdp_ir Ccdp_test_support List Program Reference Stmt String
