open Ccdp_machine
open Ccdp_runtime
open Ccdp_workloads
open Ccdp_test_support.Tutil

let run_mode mode (w : Workload.t) n_pes =
  let cfg = Config.t3d ~n_pes in
  match mode with
  | Memsys.Ccdp ->
      let c = Ccdp_core.Pipeline.compile cfg w.program in
      Interp.run cfg c.Ccdp_core.Pipeline.program ~plan:c.Ccdp_core.Pipeline.plan
        ~mode ()
  | _ ->
      Interp.run cfg
        (Ccdp_ir.Program.inline w.program)
        ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ()

let tests =
  [
    case "identical states verify" (fun () ->
        let w = Extras.jacobi ~n:10 ~iters:1 in
        let r = run_mode Memsys.Base w 4 in
        let rep = Verify.against_sequential w.Workload.program ~init:(fun _ -> ()) r in
        check_true "ok" rep.Verify.ok;
        check_true "checked elements" (rep.Verify.checked > 0);
        check_float "no diff" 0.0 rep.Verify.max_abs_diff);
    case "incoherent execution is caught with element detail" (fun () ->
        let w = Extras.jacobi ~n:10 ~iters:2 in
        let r = run_mode Memsys.Incoherent w 4 in
        let rep = Verify.against_sequential w.Workload.program ~init:(fun _ -> ()) r in
        check_false "broken" rep.Verify.ok;
        check_true "has witnesses" (rep.Verify.mismatches <> []);
        let m = List.hd rep.Verify.mismatches in
        check_true "reports array name" (String.length m.Verify.array_name > 0));
    case "the CCDP scheme repairs the incoherence" (fun () ->
        let w = Extras.jacobi ~n:10 ~iters:2 in
        let r = run_mode Memsys.Ccdp w 4 in
        let rep = Verify.against_sequential w.Workload.program ~init:(fun _ -> ()) r in
        check_true "coherent" rep.Verify.ok);
    case "invalidation also repairs it (the conservative way)" (fun () ->
        let w = Extras.jacobi ~n:10 ~iters:2 in
        let r = run_mode Memsys.Invalidate w 4 in
        let rep = Verify.against_sequential w.Workload.program ~init:(fun _ -> ()) r in
        check_true "coherent" rep.Verify.ok);
    case "tolerance admits small differences" (fun () ->
        let w = Extras.triad ~n:8 in
        let a = run_mode Memsys.Base w 2 in
        let b = run_mode Memsys.Base w 2 in
        let rep =
          Verify.compare_states ~tol:0.5 ~expected:a.Interp.sys ~got:b.Interp.sys
            (Ccdp_ir.Program.inline w.Workload.program)
        in
        check_true "ok" rep.Verify.ok);
    case "max_report caps the mismatch list" (fun () ->
        let w = Extras.jacobi ~n:10 ~iters:2 in
        let r = run_mode Memsys.Incoherent w 4 in
        let seq =
          run_mode Memsys.Seq w 1
        in
        let rep =
          Verify.compare_states ~max_report:2 ~expected:seq.Interp.sys
            ~got:r.Interp.sys
            (Ccdp_ir.Program.inline w.Workload.program)
        in
        check_true "capped" (List.length rep.Verify.mismatches <= 2));
  ]

let () = Alcotest.run "verify" [ ("verify", tests) ]
