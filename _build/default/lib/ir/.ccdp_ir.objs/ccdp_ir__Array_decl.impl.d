lib/ir/array_decl.ml: Array Dist Format Printf String
