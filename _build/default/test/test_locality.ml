open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

(* Build a loop whose body reads the given subscripts of X, then return the
   Ref_info list of its reads (via the full pipeline plumbing). *)
let infos_of_reads ?(dims = [| 16; 16 |]) subs_list =
  let b = B.create ~name:"loc" () in
  B.param b "n" 16;
  B.array_ b "X" dims;
  B.array_ b "O" dims;
  let open B.A in
  let sum =
    List.fold_left
      (fun acc subs -> F.(acc + Fexpr.Ref (B.ref_ b "X" subs)))
      (F.const 0.0) subs_list
  in
  let p =
    B.finish b
      [
        B.doall b "j" (bc 1) (bc 14)
          [ B.for_ b "i" (bc 1) (bc 14) [ B.assign b "O" [ v "i"; v "j" ] sum ] ];
      ]
  in
  let ep = Epoch.partition p.Program.main in
  let infos = Ref_info.collect ep in
  ( Program.find_array p "X",
    List.filter
      (fun (i : Ref_info.t) ->
        (not i.write) && i.ref_.Reference.array_name = "X")
      infos )

let decl_of name =
  if name = "X" || name = "O" then Array_decl.make name [| 16; 16 |]
  else invalid_arg name

let offsets =
  [
    case "word_offset is column-major" (fun () ->
        let decl = Array_decl.make "X" [| 16; 16 |] in
        let r id subs = Reference.make ~id "X" subs in
        check_int "i,j" 0 (Locality.word_offset decl (r 0 [| Affine.var "i"; Affine.var "j" |]));
        check_int "i+1,j" 1
          (Locality.word_offset decl (r 1 [| Affine.add (Affine.var "i") Affine.one; Affine.var "j" |]));
        check_int "i,j+1" 16
          (Locality.word_offset decl (r 2 [| Affine.var "i"; Affine.add (Affine.var "j") Affine.one |])));
    case "stride_wrt reflects the dimension walked" (fun () ->
        let decl = Array_decl.make "X" [| 16; 16 |] in
        let r = Reference.make ~id:0 "X" [| Affine.var "i"; Affine.var "j" |] in
        check_int "d/di" 1 (Locality.stride_wrt decl r ~var:"i");
        check_int "d/dj" 16 (Locality.stride_wrt decl r ~var:"j");
        check_int "d/dk" 0 (Locality.stride_wrt decl r ~var:"k"));
  ]

let sub i_off j_off =
  [
    Affine.add (Affine.var "i") (Affine.const i_off);
    Affine.add (Affine.var "j") (Affine.const j_off);
  ]

let grouping =
  [
    case "row neighbours cluster under the lead with smallest offset" (fun () ->
        let _, infos = infos_of_reads [ sub 0 0; sub 1 0; sub (-1) 0 ] in
        let gs =
          Locality.group ~decl_of ~line_words:4 ~inner_var:(Some ("i", 1)) infos
        in
        check_int "one group" 1 (List.length gs);
        let g = List.hd gs in
        check_int "covers two" 2 (List.length g.Locality.covered);
        check_int "span 2 words" 2 g.Locality.span_words;
        check_int "lead offset is -1" (-1)
          (Locality.word_offset (decl_of "X") g.Locality.lead.Ref_info.ref_));
    case "column neighbours are separate groups (16 words apart)" (fun () ->
        let _, infos = infos_of_reads [ sub 0 0; sub 0 1; sub 0 (-1) ] in
        let gs =
          Locality.group ~decl_of ~line_words:4 ~inner_var:(Some ("i", 1)) infos
        in
        check_int "three groups" 3 (List.length gs));
    case "non-uniformly-generated refs never share a group" (fun () ->
        let _, infos =
          infos_of_reads
            [ sub 0 0; [ Affine.scale 2 (Affine.var "i"); Affine.var "j" ] ]
        in
        let gs =
          Locality.group ~decl_of ~line_words:4 ~inner_var:(Some ("i", 1)) infos
        in
        check_int "two groups" 2 (List.length gs));
    case "descending traversal flips the lead" (fun () ->
        let _, infos = infos_of_reads [ sub 0 0; sub 1 0 ] in
        (* pretend the inner loop walks i downwards *)
        let gs =
          Locality.group ~decl_of ~line_words:4 ~inner_var:(Some ("i", -1)) infos
        in
        let g = List.hd gs in
        check_int "lead is +1" 1
          (Locality.word_offset (decl_of "X") g.Locality.lead.Ref_info.ref_));
    case "straight-line clustering requires the exact same line" (fun () ->
        let _, infos = infos_of_reads [ sub 0 0; sub 1 0 ] in
        (* no inner variable: i varies with stride 1 words; same line cannot
           be proven, so both stay leads *)
        let gs = Locality.group ~decl_of ~line_words:4 ~inner_var:None infos in
        check_int "two groups" 2 (List.length gs));
    case "identical references cluster in straight-line code" (fun () ->
        let _, infos = infos_of_reads [ sub 0 0; sub 0 0 ] in
        let gs = Locality.group ~decl_of ~line_words:4 ~inner_var:None infos in
        check_int "one group" 1 (List.length gs));
    case "loop-invariant group needs line-multiple varying strides" (fun () ->
        (* references varying only in j (stride 16 = multiple of 4):
           offsets 0 and 1 share a line for every j *)
        let _, infos =
          infos_of_reads [ [ Affine.const 0; Affine.var "j" ]; [ Affine.const 1; Affine.var "j" ] ]
        in
        let gs = Locality.group ~decl_of ~line_words:4 ~inner_var:None infos in
        check_int "one group" 1 (List.length gs));
  ]

let () = Alcotest.run "locality" [ ("offsets", offsets); ("grouping", grouping) ]
