lib/analysis/parallelize.ml: Affine Array Bound Ccdp_ir Fexpr Format Iterspace List Printf Program Reference Set Stmt String
