lib/ir/craft_parse.mli: Program
