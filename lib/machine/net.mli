(** First-class interconnect descriptions.

    The machine model's distance and bandwidth behaviour lives behind this
    interface: [hops] gives the topological distance between two PEs,
    [cost] the pre-folded per-access latency increment ([hop] cycles per
    hop, folded into a flat matrix at [create] time so the per-access fast
    path is a single array read — no allocation, no dispatch), and
    [acquire] the optional link-occupancy accounting that charges queueing
    delay when concurrent remote transfers share a bottleneck link.

    The interconnect also carries the machine's coherence-cluster axis:
    [cluster_pes] consecutive PEs form one island whose internal transfers
    ride a cheap local fabric ([cost] folds same-cluster pairs to 0) and
    whose island-local snoop traffic serializes on a per-cluster bus
    ([acquire_cluster_bus]). [cluster_pes = 1] is the flat machine: every
    PE is its own singleton cluster and nothing changes. *)

type kind =
  | Uniform  (** every remote access costs the same; no geometry *)
  | Torus3d  (** the Cray T3D's 3-D torus (wraparound, minimal routing) *)
  | Mesh2d  (** 2-D mesh, no wraparound: Manhattan distance *)
  | Crossbar
      (** constant distance (one hop to any other PE); contention happens
          at the shared destination port *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

(** All four kinds, in declaration order. *)
val all_kinds : kind list

(** [kind_name] of every kind, in declaration order (for generated CLI
    help). *)
val kind_names : string list

type t

(** [create ?hop ?cluster_pes kind ~n_pes] builds the interconnect at the
    given machine width. [hop] is the per-hop latency in cycles (default
    0); [cluster_pes] the coherence-cluster width (default 1 = flat; must
    divide [n_pes]). The all-pairs cost matrix is folded here, once. *)
val create : ?hop:int -> ?cluster_pes:int -> kind -> n_pes:int -> t

val kind : t -> kind
val n_pes : t -> int

(** Topological distance between two PEs. A metric: [hops a a = 0],
    symmetric, and satisfies the triangle inequality. *)
val hops : t -> int -> int -> int

(** Maximum of [hops] over all PE pairs. *)
val diameter : t -> int

(** PEs per coherence cluster (1 on a flat machine). *)
val cluster_pes : t -> int

(** Number of coherence clusters ([n_pes / cluster_pes]). *)
val n_clusters : t -> int

(** The cluster PE [pe] belongs to: [pe / cluster_pes]. *)
val cluster_of : t -> int -> int

(** Whether two PEs share a coherence cluster. With [cluster_pes = 1] this
    holds only for [a = b]. *)
val same_cluster : t -> int -> int -> bool

(** Pre-folded latency increment of a remote access from [src] to [dst]:
    [hop * hops src dst], read from the matrix built at [create] time —
    except that same-cluster pairs cost 0 (intra-cluster transfers ride
    the island's local fabric, not the machine interconnect). *)
val cost : t -> src:int -> dst:int -> int

(** [acquire t ~dst ~now ~hold] books [hold] cycles of the bottleneck link
    into PE [dst] starting at cycle [now] and returns
    [(queueing_delay, burst_depth)]: the delay until the link is free, and
    how many transfers (including this one) the current busy burst holds.
    Deterministic — link state is a pure function of the acquire sequence. *)
val acquire : t -> dst:int -> now:int -> hold:int -> int * int

(** [acquire_bus t ~now ~since ~hold] books [hold] cycles of the
    machine-wide serialized snoop bus for a transaction happening at local
    cycle [now] on a PE whose current epoch began at cycle [since] (the
    post-barrier clock). Returns [(queueing_delay, backlog_depth)]. The
    bus is modelled as a throughput bottleneck — accumulated service
    demand since the last barrier versus the requester's elapsed epoch
    time — rather than a next-free-cycle port, because epochs are
    replayed PE-major on private clocks (see the implementation comment).
    Every PE's coherence transactions share the single counter; only the
    bus-snooping modes use it. Deterministic. *)
val acquire_bus : t -> now:int -> since:int -> hold:int -> int * int

(** [acquire_cluster_bus t ~cluster ~now ~since ~hold] is [acquire_bus]
    scoped to one island's local snoop bus: the same throughput-backlog
    model with an independent counter per cluster, so one island's
    coherence storm never delays another's. Used by the Clustered mode's
    intra-cluster snoops. *)
val acquire_cluster_bus :
  t -> cluster:int -> now:int -> since:int -> hold:int -> int * int

(** Forget all link (and bus) bookings (barriers drain the network). *)
val reset_links : t -> unit

val pp : Format.formatter -> t -> unit
