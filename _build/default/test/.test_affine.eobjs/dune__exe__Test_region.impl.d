test/test_region.ml: Affine Alcotest Builder Ccdp_analysis Ccdp_ir Ccdp_test_support Dist Epoch List Program Ref_info Reference Region Section Stmt
